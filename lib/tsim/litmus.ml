type mode = M_sc | M_tso | M_tbtso of int | M_tsos of int

type instr =
  | Store of int * int
  | Load of int * int
  | Loadeq of int * int * int
  | Fence
  | Wait of int
  | Cas of int * int * int * int

type outcome = { regs : int array array; mem : int array }

(* Store-buffer entries carry remaining slack (ticks until the Δ deadline)
   instead of absolute times, so that states are clock-translation
   invariant and deduplicate well. [max_int] encodes "no deadline". *)
type entry = { addr : int; value : int; slack : int }

type tstate = {
  pc : int;
  regs_v : int array;
  wait : int;  (* remaining blocked ticks; 0 = runnable *)
  buf : entry list;  (* oldest first *)
}

type state = { mem_v : int array; threads : tstate array }

type stats = {
  visited : int;
  dedup_hits : int;
  canon_hits : int;
  zones_merged : int;
  max_frontier : int;
  time_leaps : int;
  sleep_skips : int;
  dd_skips : int;
  di_skips : int;
  ii_skips : int;
  races_detected : int;
  wut_nodes : int;
  source_set_hits : int;
  frontier_steals : int;
  elapsed : float;
}

type result = { outcomes : outcome list; complete : bool; stats : stats }

let forward buf addr =
  (* Newest matching entry wins; [buf] is oldest-first. *)
  List.fold_left (fun acc e -> if e.addr = addr then Some e.value else acc) None buf

(* [k] ticks pass: decrement waits and slacks. Returns None if some
   buffered store can no longer meet its deadline (pruned execution).
   [age_by 1] is exactly the reference semantics' per-action aging; a
   single [age_by k] is observationally equal to [k] single steps. *)
let age_by k state =
  let ok = ref true in
  let threads =
    Array.map
      (fun t ->
        let buf =
          List.map
            (fun e ->
              if e.slack = max_int then e
              else if e.slack < k then begin
                ok := false;
                e
              end
              else { e with slack = e.slack - k })
            t.buf
        in
        { t with wait = (if t.wait > k then t.wait - k else 0); buf })
      state.threads
  in
  if !ok then Some { state with threads } else None

let age state = age_by 1 state

let default_max_states = 2_000_000

module Span = Tbtso_obs.Span

(* Wakeup sequences for source-DPOR, in the flattened list-of-sequences
   form: each pending entry is a sequence of action ids (bit [i] =
   drain by thread [i], bit [n + i] = thread [i]'s next instruction)
   that, replayed from the owning exploration frame, reverses a
   detected race. [insert] applies the two subsumption rules of the
   source-set construction: a sequence whose initials intersect the
   frame's scheduled-or-explored action set is already covered by an
   existing branch, and a sequence with a pending prefix is covered by
   that prefix's own guided replay (the guide's free continuation
   explores everything below it). Kept as a standalone module so the
   insertion/subsumption logic is unit-testable without an
   exploration. *)
module Wut = struct
  type t = { mutable seqs : int array list; mutable nodes : int }

  let create () = { seqs = []; nodes = 0 }
  let pending t = t.seqs <> []
  let nodes t = t.nodes

  let is_prefix p v =
    Array.length p <= Array.length v
    &&
    let ok = ref true in
    for i = 0 to Array.length p - 1 do
      if p.(i) <> v.(i) then ok := false
    done;
    !ok

  (* [insert t ~initials ~scheduled v]: [initials] is the bitmask of
     initial actions of [v] (always including [v.(0)]), [scheduled] the
     bitmask of actions already scheduled or explored at the frame. *)
  let insert t ~initials ~scheduled v =
    if Array.length v = 0 || initials land scheduled <> 0 then `Subsumed
    else if List.exists (fun w -> is_prefix w v) t.seqs then `Subsumed
    else begin
      t.seqs <- t.seqs @ [ v ];
      t.nodes <- t.nodes + Array.length v;
      `Added
    end

  let take t =
    match t.seqs with
    | [] -> None
    | v :: rest ->
        t.seqs <- rest;
        Some v
end

(* Mutable scratch representation of one exploration state, allocated
   once per exploration and reused for every state: the expand loop
   decodes the parent into one of these, ages and mutates children in
   place, and re-encodes into the packed key buffer — zero per-state
   allocation. Thread [i]'s buffer slots live at words
   [3·boff(i) .. 3·boff(i+1)) of [s_buf] as (addr, value, slack)
   triples, where [boff] accumulates each thread's static store count
   (an upper bound on its buffer length: programs are straight-line,
   every store issues at most once). Words past [s_len.(i)] entries are
   stale and never read. *)
type scratch_state = {
  s_mem : int array;
  s_pc : int array;
  s_wait : int array;
  s_len : int array;
  s_regs : int array;  (* thread i's register r at [i * regs + r] *)
  s_buf : int array;
}

(* Exploration seeds for cross-call hand-off: a packed state key plus
   the sleep set and class mask to (re-)explore it with. Produced when
   an engine stops early ([frontier_limit] / [handoff]) and consumed
   via [init] by a later call, possibly in another domain with its own
   arena. *)
type seed = int array * int * int

let enumerate_core ~mode ~addrs ~regs ~max_states ~profiler ?(dpor = false)
    ?(arena_words = 1 lsl 16) ?(table_slots = 4096) ?on_intern
    ?(init = ([] : seed list)) ?frontier_limit ?(handoff = false) programs0 =
  let t0 = Sys.time () in
  (* Phase accumulators (no-ops on the disabled profiler). [expand] is
     inclusive: it contains the canon / intern / sleep sections of the
     children it pushes. *)
  let ph_expand = Span.phase profiler "explore.expand" in
  let ph_canon = Span.phase profiler "explore.canon" in
  let ph_intern = Span.phase profiler "explore.intern" in
  let ph_sleep = Span.phase profiler "explore.sleep" in
  let ph_race = Span.phase profiler "explore.race" in
  let ph_wut = Span.phase profiler "explore.wut" in
  let programs = Array.of_list (List.map Array.of_list programs0) in
  let n = Array.length programs in
  let slack_of_store =
    match mode with M_tbtso d -> d | M_sc | M_tso | M_tsos _ -> max_int
  in
  let buffer_capacity =
    match mode with M_tsos s -> s | M_sc | M_tso | M_tbtso _ -> max_int
  in
  (* [suffix.(i).(pc)]: upper bound on the aging steps thread [i] can
     still cause from [pc] — one per instruction, plus one per future
     store (its drain), plus the full duration of every future wait
     (each tick of idling must be covered by some active wait). *)
  let suffix =
    Array.map
      (fun prog ->
        let len = Array.length prog in
        let s = Array.make (len + 1) 0 in
        for pc = len - 1 downto 0 do
          s.(pc) <-
            s.(pc + 1)
            + (match prog.(pc) with
              | Store _ -> 2
              | Wait d -> 1 + d
              | Load _ | Loadeq _ | Fence | Cas _ -> 1)
        done;
        s)
      programs
  in
  (* [actions.(i).(pc)]: real actions (instructions + drains of future
     stores) thread [i] can still perform from [pc] — like [suffix] but
     without wait durations. *)
  let actions =
    Array.map
      (fun prog ->
        let len = Array.length prog in
        let s = Array.make (len + 1) 0 in
        for pc = len - 1 downto 0 do
          s.(pc) <-
            s.(pc + 1)
            + (match prog.(pc) with
              | Store _ -> 2
              | Load _ | Loadeq _ | Fence | Cas _ | Wait _ -> 1)
        done;
        s)
      programs
  in
  (* [wsum.(i).(pc)]: total duration of the waits thread [i] has not yet
     started from [pc] — the only absolute idle padding a schedule can
     draw on beyond the wake timers already live in the state. *)
  let wsum =
    Array.init n (fun i ->
        Array.mapi (fun pc s -> s - actions.(i).(pc)) suffix.(i))
  in
  (* [sfut.(i).(pc)]: stores thread [i] has not yet issued from [pc] —
     each can open one more ≤ Δ drain window in an upper-bound chain. *)
  let sfut =
    Array.map
      (fun prog ->
        let len = Array.length prog in
        let s = Array.make (len + 1) 0 in
        for pc = len - 1 downto 0 do
          s.(pc) <-
            (s.(pc + 1)
            + match prog.(pc) with
              | Store _ -> 1
              | Load _ | Loadeq _ | Fence | Cas _ | Wait _ -> 0)
        done;
        s)
      programs
  in
  let clamp_pc i pc =
    let len = Array.length programs.(i) in
    if pc > len then len else pc
  in
  let outcomes = Hashtbl.create 64 in
  let visited = ref 0 in
  let dedup_hits = ref 0 in
  let canon_hits = ref 0 in
  let zones_merged = ref 0 in
  let max_frontier = ref 0 in
  let frontier = ref 0 in
  let time_leaps = ref 0 in
  let sleep_skips = ref 0 in
  let dd_skips = ref 0 in
  let di_skips = ref 0 in
  let ii_skips = ref 0 in
  let races_detected = ref 0 in
  let wut_nodes = ref 0 in
  let source_set_hits = ref 0 in
  let exhausted = ref false in
  let seeds_out = ref ([] : seed list) in
  (* --- Packed scratch states --- *)
  let bufcap =
    Array.map
      (fun prog ->
        Array.fold_left
          (fun acc ins ->
            match ins with
            | Store _ -> acc + 1
            | Load _ | Loadeq _ | Fence | Wait _ | Cas _ -> acc)
          0 prog)
      programs
  in
  let boff = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    boff.(i + 1) <- boff.(i) + bufcap.(i)
  done;
  let total_cap = boff.(n) in
  (* Packed key layout (the FNV-1a-hashed intern key): memory cells,
     then per thread: pc, wait, buffer length, registers, then one
     (addr, value, slack) triple per live buffer entry. At most
     [key_max] words; written into the single scratch buffer [kbuf]. *)
  let key_max = addrs + (n * (3 + regs)) + (3 * total_cap) in
  let make_ws () =
    {
      s_mem = Array.make addrs 0;
      s_pc = Array.make n 0;
      s_wait = Array.make n 0;
      s_len = Array.make n 0;
      s_regs = Array.make (n * regs) 0;
      s_buf = Array.make (3 * total_cap) 0;
    }
  in
  let copy_ws dst src =
    Array.blit src.s_mem 0 dst.s_mem 0 addrs;
    Array.blit src.s_pc 0 dst.s_pc 0 n;
    Array.blit src.s_wait 0 dst.s_wait 0 n;
    Array.blit src.s_len 0 dst.s_len 0 n;
    Array.blit src.s_regs 0 dst.s_regs 0 (n * regs);
    Array.blit src.s_buf 0 dst.s_buf 0 (3 * total_cap)
  in
  (* [a_ws]: the parent being expanded; [b_ws]: the parent aged by one
     tick, shared by every action branch; [c_ws]: the child under
     construction (copied from [b_ws], mutated, canonicalized in place,
     encoded, interned). *)
  let a_ws = make_ws () in
  let b_ws = make_ws () in
  let c_ws = make_ws () in
  let b_ok = ref false in
  let kbuf = Array.make (max key_max 1) 0 in
  let encode_ws c =
    let p = ref 0 in
    for a = 0 to addrs - 1 do
      Array.unsafe_set kbuf !p (Array.unsafe_get c.s_mem a);
      incr p
    done;
    for i = 0 to n - 1 do
      Array.unsafe_set kbuf !p c.s_pc.(i);
      incr p;
      Array.unsafe_set kbuf !p c.s_wait.(i);
      incr p;
      let l = c.s_len.(i) in
      Array.unsafe_set kbuf !p l;
      incr p;
      let rb = i * regs in
      for r = 0 to regs - 1 do
        Array.unsafe_set kbuf !p (Array.unsafe_get c.s_regs (rb + r));
        incr p
      done;
      let b = 3 * boff.(i) in
      for j = 0 to (3 * l) - 1 do
        Array.unsafe_set kbuf !p (Array.unsafe_get c.s_buf (b + j));
        incr p
      done
    done;
    !p
  in
  let fnv len =
    let h = ref 0x811c9dc5 in
    for i = 0 to len - 1 do
      h := (!h lxor Array.unsafe_get kbuf i) * 0x01000193 land max_int
    done;
    !h
  in
  (* --- Hash-cons arena ---

     Canonical states are interned at push time into a dense id space:
     the packed key words live back to back in the growable [arena],
     the open-addressed [table] (power-of-two capacity, linear probing,
     slots hold id + 1 with 0 = empty, ≤ 0.5 load) maps key to id via
     the cached FNV hash, and [sleeps.(id)]/[slclss.(id)] hold the
     sleep set the state was (last) expanded with (-1 = not yet
     expanded). The worklist carries plain ids, the hot dedup path
     compares ids instead of re-hashing keys, re-arrivals at an
     interned state count as [canon_hits], and the intern hit path
     allocates nothing. *)
  let round_pow2 x =
    let c = ref 16 in
    while !c < x do
      c := 2 * !c
    done;
    !c
  in
  let arena = ref (Array.make (max arena_words 16) 0) in
  let arena_used = ref 0 in
  let arena_growths = ref 0 in
  let table = ref (Array.make (round_pow2 table_slots) 0) in
  let key_off = ref (Array.make 1024 0) in
  let key_len = ref (Array.make 1024 0) in
  let key_hash = ref (Array.make 1024 0) in
  let sleeps = ref (Array.make 1024 (-1)) in
  let slclss = ref (Array.make 1024 0) in
  (* Per-state subtree summaries for source-DPOR under hash-cons dedup:
     once a state's DFS subtree has completed, [sum_r]/[sum_w] hold the
     aggregated read/write footprint per action proc (stride [2n]) of
     every event in that subtree, and [sum_cc] the procs that executed
     a counter-creating event. When a later arrival at the state is
     dedup-skipped, these stand in for the skipped events in race
     detection against the current DFS stack (conservative: order and
     happens-before inside the subtree are discarded, so strictly more
     backtrack points, never fewer). Only allocated under [dpor]. *)
  let nacts = 2 * n in
  let sum_stride = max nacts 1 in
  let sum_r = ref (if dpor then Array.make (1024 * sum_stride) 0 else [||]) in
  let sum_w = ref (if dpor then Array.make (1024 * sum_stride) 0 else [||]) in
  let sum_cc = ref (if dpor then Array.make 1024 0 else [||]) in
  let nstates = ref 0 in
  let rehash () =
    let cap = 2 * Array.length !table in
    let t = Array.make cap 0 in
    let mask = cap - 1 in
    let kh = !key_hash in
    for id = 0 to !nstates - 1 do
      let slot = ref (kh.(id) land mask) in
      while t.(!slot) <> 0 do
        slot := (!slot + 1) land mask
      done;
      t.(!slot) <- id + 1
    done;
    table := t
  in
  (* Intern the packed key in [kbuf.(0..klen-1)]: the id of the state,
     existing or fresh. *)
  let intern_packed klen h =
    let tbl = !table in
    let mask = Array.length tbl - 1 in
    let ar = !arena in
    let ko = !key_off and kl = !key_len and kh = !key_hash in
    let slot = ref (h land mask) in
    let found = ref (-1) in
    let probing = ref true in
    while !probing do
      let v = Array.unsafe_get tbl !slot in
      if v = 0 then probing := false
      else begin
        let cand = v - 1 in
        if Array.unsafe_get kh cand = h && Array.unsafe_get kl cand = klen
        then begin
          let off = Array.unsafe_get ko cand in
          let i = ref 0 in
          while
            !i < klen
            && Array.unsafe_get ar (off + !i) = Array.unsafe_get kbuf !i
          do
            incr i
          done;
          if !i = klen then begin
            found := cand;
            probing := false
          end
          else slot := (!slot + 1) land mask
        end
        else slot := (!slot + 1) land mask
      end
    done;
    if !found >= 0 then begin
      incr canon_hits;
      !found
    end
    else begin
      let id = !nstates in
      let idcap = Array.length !key_off in
      if id >= idcap then begin
        let grow a fill =
          let a' = Array.make (2 * idcap) fill in
          Array.blit !a 0 a' 0 idcap;
          a := a'
        in
        grow key_off 0;
        grow key_len 0;
        grow key_hash 0;
        grow sleeps (-1);
        grow slclss 0;
        if dpor then begin
          let grow_strided a =
            let a' = Array.make (2 * idcap * sum_stride) 0 in
            Array.blit !a 0 a' 0 (idcap * sum_stride);
            a := a'
          in
          grow_strided sum_r;
          grow_strided sum_w;
          grow sum_cc 0
        end
      end;
      (if !arena_used + klen > Array.length !arena then begin
         let newcap = ref (2 * Array.length !arena) in
         while !arena_used + klen > !newcap do
           newcap := 2 * !newcap
         done;
         let a' = Array.make !newcap 0 in
         Array.blit !arena 0 a' 0 !arena_used;
         arena := a';
         incr arena_growths
       end);
      let off = !arena_used in
      Array.blit kbuf 0 !arena off klen;
      arena_used := off + klen;
      !key_off.(id) <- off;
      !key_len.(id) <- klen;
      !key_hash.(id) <- h;
      !sleeps.(id) <- -1;
      !slclss.(id) <- 0;
      !table.(!slot) <- id + 1;
      incr nstates;
      if 2 * !nstates >= Array.length !table then rehash ();
      id
    end
  in
  let intern c =
    Span.start ph_intern;
    let klen = encode_ws c in
    let id = intern_packed klen (fnv klen) in
    Span.stop ph_intern;
    Span.items ph_intern 1;
    (match on_intern with
    | None -> ()
    | Some f -> f (Array.sub kbuf 0 klen) id);
    id
  in
  let decode_ws off dst =
    let ar = !arena in
    let p = ref off in
    for a = 0 to addrs - 1 do
      dst.s_mem.(a) <- Array.unsafe_get ar !p;
      incr p
    done;
    for i = 0 to n - 1 do
      dst.s_pc.(i) <- Array.unsafe_get ar !p;
      incr p;
      dst.s_wait.(i) <- Array.unsafe_get ar !p;
      incr p;
      let l = Array.unsafe_get ar !p in
      incr p;
      dst.s_len.(i) <- l;
      let rb = i * regs in
      for r = 0 to regs - 1 do
        dst.s_regs.(rb + r) <- Array.unsafe_get ar !p;
        incr p
      done;
      let b = 3 * boff.(i) in
      for j = 0 to (3 * l) - 1 do
        dst.s_buf.(b + j) <- Array.unsafe_get ar !p;
        incr p
      done
    done
  in
  (* Upper bound on the number of aging steps any continuation of the
     state can take before the whole program terminates (or dead-ends). *)
  let horizon_ws c =
    let h = ref 0 in
    for i = 0 to n - 1 do
      h := !h + c.s_wait.(i) + c.s_len.(i) + suffix.(i).(clamp_pc i c.s_pc.(i))
    done;
    !h
  in
  (* Observability caps for the zone abstraction (see [Zone] for the
     full argument). A feasibility threshold compares either a pairwise
     timer difference against at most [Δ·S_fut + W_fut + R_live + 1] —
     upper-bound chains anchor at live timers (relational) and can
     extend by one ≤ Δ window per not-yet-issued store plus the
     coverage of not-yet-started waits — or the smallest timer against
     a lower-bound total of at most [W_fut + R_live + 1], with no Δ
     term at all. Under SC/TSO/TSO[S] there are no deadlines, hence no
     upper-bound anchors, and only order and ties are observable: both
     caps shrink to [2 + R_live]. The base cap's Δ-freedom is what
     makes the flag protocol's wait-vs-Δ race flat in Δ, and the
     [Δ·S_fut] gap term vanishes once the racing stores are issued.
     (The previous per-counter cap was [R + Δ·nwin] with [nwin ≥ 1] in
     {e every} TBTSO state, which kept the wake concrete through the
     whole wait — the linear-in-Δ blow-up this replaces.) *)
  let max_slack = match mode with M_tbtso d -> d | M_sc | M_tso | M_tsos _ -> 0 in
  let cap_base = ref 0 in
  let cap_gap = ref 0 in
  let zone_caps_ws c =
    let r = ref 0 and w = ref 0 and s = ref 0 in
    for i = 0 to n - 1 do
      let pc = clamp_pc i c.s_pc.(i) in
      r := !r + c.s_len.(i) + actions.(i).(pc);
      w := !w + wsum.(i).(pc);
      s := !s + sfut.(i).(pc)
    done;
    match mode with
    | M_sc | M_tso | M_tsos _ ->
        cap_base := 2 + !r;
        cap_gap := 2 + !r
    | M_tbtso _ ->
        let dwin =
          (* Saturate instead of overflowing for absurd Δ: a cap this
             large never clamps anything, which is trivially exact. *)
          if !s > 0 && max_slack >= max_int / (4 * (!s + 1)) then max_int / 4
          else max_slack * !s
        in
        cap_base := 2 + !r + !w;
        cap_gap := 2 + !r + !w + dwin
  in
  (* Time-leap aging, part 2: map the state's live timers (wake timers
     from waits, deadline timers from slacks) to their canonical zone
     representative — ∞-saturate deadlines beyond the horizon, then
     base/gap-clamp the rest at [zone_cap]. Iterated to a fixpoint:
     clamping waits shrinks the horizon, which can unlock further
     saturation. Each pass is outcome-preserving for the concrete state
     it is applied to, so the iteration order never affects
     correctness, only how small the canonical form gets.

     Runs entirely in place on the scratch child: timers are gathered
     into the preallocated [z_kinds]/[z_vals] vectors, normalized by
     {!Zone.normalize_into} with the reusable [z_scratch], and written
     back — no allocation on any path. *)
  let max_timers = n + total_cap in
  let z_kinds = Array.make (max max_timers 1) Zone.Wake in
  let z_vals = Array.make (max max_timers 1) 0 in
  let z_scratch = Array.make (max (2 * max_timers) 1) 0 in
  let canon_ws c =
    Span.start ph_canon;
    let rewrote = ref false in
    let fixing = ref true in
    while !fixing do
      let nt = ref 0 in
      for i = 0 to n - 1 do
        if c.s_wait.(i) > 0 then begin
          z_kinds.(!nt) <- Zone.Wake;
          z_vals.(!nt) <- c.s_wait.(i);
          incr nt
        end;
        let b = 3 * boff.(i) in
        for j = 0 to c.s_len.(i) - 1 do
          z_kinds.(!nt) <- Zone.Deadline;
          z_vals.(!nt) <- c.s_buf.(b + (3 * j) + 2);
          incr nt
        done
      done;
      if !nt = 0 then fixing := false
      else begin
        zone_caps_ws c;
        let changed =
          Zone.normalize_into ~horizon:(horizon_ws c) ~base_cap:!cap_base
            ~gap_cap:!cap_gap z_kinds z_vals ~len:!nt ~scratch:z_scratch
        in
        if changed then begin
          rewrote := true;
          let j = ref 0 in
          for i = 0 to n - 1 do
            if c.s_wait.(i) > 0 then begin
              c.s_wait.(i) <- z_vals.(!j);
              incr j
            end;
            let b = 3 * boff.(i) in
            for k = 0 to c.s_len.(i) - 1 do
              c.s_buf.(b + (3 * k) + 2) <- z_vals.(!j);
              incr j
            done
          done
        end
        else fixing := false
      end
    done;
    if !rewrote then incr zones_merged;
    Span.stop ph_canon;
    Span.items ph_canon 1
  in
  (* In-place [age_by k] on a scratch state: false when some buffered
     store can no longer meet its deadline (the caller then discards
     the clobbered scratch — exactly the reference semantics' pruned
     dead end). *)
  let age_ws c k =
    let ok = ref true in
    for i = 0 to n - 1 do
      c.s_wait.(i) <- (if c.s_wait.(i) > k then c.s_wait.(i) - k else 0);
      let b = 3 * boff.(i) in
      for j = 0 to c.s_len.(i) - 1 do
        let idx = b + (3 * j) + 2 in
        let s = c.s_buf.(idx) in
        if s <> max_int then
          if s < k then ok := false else c.s_buf.(idx) <- s - k
      done
    done;
    !ok
  in
  (* Worklist items: an interned state id plus a sleep set — a bitmask
     over the 2n actions (bit [i] = drain by thread [i], bit [n + i] =
     thread [i]'s next instruction) that need not be explored from here
     because an equivalent (commuted) interleaving was already
     explored — and a class mask (2 bits per action: 0 = drain/drain,
     1 = drain/instr, 2 = instr/instr) recording which independence
     rule justified each slept action, for the per-class skip stats.
     Stored as three parallel int stacks (same LIFO order as the old
     list-of-tuples worklist, no per-push allocation). *)
  let wl_id = ref (Array.make 1024 0) in
  let wl_sleep = ref (Array.make 1024 0) in
  let wl_cls = ref (Array.make 1024 0) in
  let wl_sp = ref 0 in
  let wl_push id sleep cls =
    let cap = Array.length !wl_id in
    if !wl_sp >= cap then begin
      let grow a =
        let a' = Array.make (2 * cap) 0 in
        Array.blit !a 0 a' 0 cap;
        a := a'
      in
      grow wl_id;
      grow wl_sleep;
      grow wl_cls
    end;
    !wl_id.(!wl_sp) <- id;
    !wl_sleep.(!wl_sp) <- sleep;
    !wl_cls.(!wl_sp) <- cls;
    incr wl_sp;
    incr frontier;
    if !frontier > !max_frontier then max_frontier := !frontier
  in
  (* Canonicalize the scratch child, intern it, push its id. *)
  let push_child sl cls =
    canon_ws c_ws;
    wl_push (intern c_ws) sl cls
  in
  (* Intern an externally supplied packed key (a hand-off seed). *)
  let intern_key key =
    let klen = Array.length key in
    Array.blit key 0 kbuf 0 klen;
    let id = intern_packed klen (fnv klen) in
    (match on_intern with None -> () | Some f -> f (Array.copy key) id);
    id
  in
  let key_of_id id = Array.sub !arena !key_off.(id) !key_len.(id) in
  let drain_mask = (1 lsl n) - 1 in
  (* Counter-creating instructions start a fresh timer whose value would
     differ by one aging step across the two orders of any commuted
     pair (Wait d sets wait = d {e after} the aging of its own tick;
     a TBTSO store buffers slack Δ likewise), so they commute
     on-the-nose with nothing: their children get an empty sleep set
     and they are never inserted into a sibling's sleep set. *)
  let cc_instr_ws i c =
    match programs.(i).(c.s_pc.(i)) with
    | Store _ -> ( match mode with M_tbtso _ -> true | M_sc | M_tso | M_tsos _ -> false)
    | Wait d -> d > 0
    | Load _ | Loadeq _ | Fence | Cas _ -> false
  in
  (* Buffer forwarding on a scratch state: newest matching entry wins.
     On a hit the forwarded value is left in [fwd_hit]. *)
  let fwd_hit = ref 0 in
  let forwarded_ws c i a =
    let b = 3 * boff.(i) in
    let j = ref (c.s_len.(i) - 1) in
    let hit = ref false in
    while (not !hit) && !j >= 0 do
      if c.s_buf.(b + (3 * !j)) = a then begin
        hit := true;
        fwd_hit := c.s_buf.(b + (3 * !j) + 1)
      end
      else decr j
    done;
    !hit
  in
  (* Memory footprints as fixed-width bitsets: bit [a] of the read and
     write masks (addresses ≥ 61 share the top bit — conservative, so
     only ever {e fewer} sleeps; corpus addresses are single digits).
     An empty footprint is the zero mask and conflict checks are single
     [land]s. Refined by forwarding exactly as before: a load served
     from the thread's own buffer does not read memory, and a TSO/TSOS
     store only appends to the thread's own buffer (the memory write is
     the later drain action). Results in [fp_r]/[fp_w]. *)
  let addr_bit a = 1 lsl (if a < 61 then a else 61) in
  let fp_r = ref 0 in
  let fp_w = ref 0 in
  let footprint_ws i c =
    match programs.(i).(c.s_pc.(i)) with
    | Store (a, _) ->
        fp_r := 0;
        fp_w := (if mode = M_sc then addr_bit a else 0)
    | Load (a, _) | Loadeq (a, _, _) ->
        fp_w := 0;
        fp_r := (if forwarded_ws c i a then 0 else addr_bit a)
    | Fence | Wait _ ->
        fp_r := 0;
        fp_w := 0
    | Cas (a, _, _, _) ->
        let m = addr_bit a in
        fp_r := m;
        fp_w := m
  in
  let instr_enabled_ws i c =
    c.s_wait.(i) = 0
    && c.s_pc.(i) < Array.length programs.(i)
    && (match programs.(i).(c.s_pc.(i)) with
       | Store _ -> c.s_len.(i) < buffer_capacity
       | Fence | Cas _ -> c.s_len.(i) = 0
       | Load _ | Loadeq _ | Wait _ -> true)
  in
  let cls_dd = 0 and cls_di = 1 and cls_ii = 2 in
  (* Sleep set for the child of the current action: every
     already-explored (or inherited-slept) sibling action that provably
     commutes with it on the nose, including feasibility of the
     reversed order. [drain] says whether the current action is a drain
     by thread [i]; for a drain, [addr_mask] is the committed address's
     bit and [guard] is [slack ≥ 2] at the parent — the reversed order
     drains this entry one aging step later, so skipping the
     explored-first order is only sound when the entry survives that
     extra step. For an instruction, the footprint masks must already
     be in [fp_r]/[fp_w]; a prior drain needs no slack guard (the
     reversed order drains {e earlier}). Results in
     [sl_out]/[cls_out]. *)
  let sl_out = ref 0 in
  let cls_out = ref 0 in
  let child_sleep_core c explored ~acting:i ~drain ~addr_mask ~guard =
    let ri = if drain then 0 else !fp_r in
    let wi = if drain then 0 else !fp_w in
    sl_out := 0;
    cls_out := 0;
    let keep bit cl =
      sl_out := !sl_out lor (1 lsl bit);
      cls_out := !cls_out lor (cl lsl (2 * bit))
    in
    for m = 0 to n - 1 do
      if m <> i then begin
        (if explored land (1 lsl m) <> 0 && c.s_len.(m) > 0 then begin
           let em_mask = addr_bit c.s_buf.(3 * boff.(m)) in
           if drain then begin
             if guard && em_mask land addr_mask = 0 then keep m cls_dd
           end
           else if ri land em_mask = 0 && wi land em_mask = 0 then
             keep m cls_di
         end);
        if explored land (1 lsl (n + m)) <> 0 then
          if instr_enabled_ws m c && not (cc_instr_ws m c) then begin
            footprint_ws m c;
            let rm = !fp_r and wm = !fp_w in
            if drain then begin
              if guard && rm land addr_mask = 0 && wm land addr_mask = 0 then
                keep (n + m) cls_di
            end
            else if wi land rm = 0 && wi land wm = 0 && wm land ri = 0 then
              keep (n + m) cls_ii
          end
      end
    done
  in
  let child_sleep c explored ~acting ~drain ~addr_mask ~guard =
    Span.start ph_sleep;
    child_sleep_core c explored ~acting ~drain ~addr_mask ~guard;
    Span.stop ph_sleep;
    Span.items ph_sleep 1
  in
  let count_skip slcls bit =
    incr sleep_skips;
    match (slcls lsr (2 * bit)) land 3 with
    | 0 -> incr dd_skips
    | 1 -> incr di_skips
    | _ -> incr ii_skips
  in
  (* Expand the parent in [a_ws]. Children are built by blitting the
     shared aged copy [b_ws] into [c_ws], mutating [c_ws] in place and
     pushing it — each action branch fully consumes [c_ws] before the
     next begins. *)
  let expand_ws sleep slcls =
    (* Terminal state: all threads completed, all buffers empty. *)
    let terminal = ref true in
    for i = 0 to n - 1 do
      if
        a_ws.s_len.(i) > 0
        || a_ws.s_wait.(i) > 0
        || a_ws.s_pc.(i) < Array.length programs.(i)
      then terminal := false
    done;
    if !terminal then
      let o =
        {
          regs = Array.init n (fun i -> Array.sub a_ws.s_regs (i * regs) regs);
          mem = Array.copy a_ws.s_mem;
        }
      in
      Hashtbl.replace outcomes o ()
    else begin
      (* Aging is identical for every action branch from this state, so
         compute it once into [b_ws]. [false] means some deadline
         already expired: no action (and no idle) is possible — a
         pruned dead end. *)
      copy_ws b_ws a_ws;
      b_ok := age_ws b_ws 1;
      (* Drain actions, in thread order, with the sleep-set reduction:
         after exploring an action we add it to [explored]; later
         siblings' children inherit every explored action that provably
         commutes with theirs (see [child_sleep]) and never explore the
         reversed order of an independent pair. Inherited slept actions
         count as explored for this purpose. *)
      let explored = ref sleep in
      for i = 0 to n - 1 do
        if a_ws.s_len.(i) > 0 then begin
          if sleep land (1 lsl i) <> 0 then count_skip slcls i
          else begin
            (if !b_ok then begin
               let eb = 3 * boff.(i) in
               let e_addr = a_ws.s_buf.(eb) in
               let e_slack = a_ws.s_buf.(eb + 2) in
               copy_ws c_ws b_ws;
               (* Commit thread [i]'s oldest entry (addr/value survive
                  aging) and shift the rest down one slot. *)
               c_ws.s_mem.(e_addr) <- c_ws.s_buf.(eb + 1);
               let l = c_ws.s_len.(i) in
               Array.blit c_ws.s_buf (eb + 3) c_ws.s_buf eb (3 * (l - 1));
               c_ws.s_len.(i) <- l - 1;
               child_sleep a_ws !explored ~acting:i ~drain:true
                 ~addr_mask:(addr_bit e_addr) ~guard:(e_slack >= 2);
               push_child !sl_out !cls_out
             end);
            explored := !explored lor (1 lsl i)
          end
        end
      done;
      (* Instruction actions. *)
      for i = 0 to n - 1 do
        if instr_enabled_ws i a_ws then begin
          if sleep land (1 lsl (n + i)) <> 0 then count_skip slcls (n + i)
          else begin
            let cc = cc_instr_ws i a_ws in
            let sl, cls =
              if cc then (0, 0)
              else begin
                footprint_ws i a_ws;
                child_sleep a_ws !explored ~acting:i ~drain:false ~addr_mask:0
                  ~guard:false;
                (!sl_out, !cls_out)
              end
            in
            (if !b_ok then begin
               copy_ws c_ws b_ws;
               let pc = c_ws.s_pc.(i) in
               (match programs.(i).(pc) with
               | Store (a, v) ->
                   if mode = M_sc then begin
                     c_ws.s_mem.(a) <- v;
                     c_ws.s_pc.(i) <- pc + 1
                   end
                   else begin
                     let l = c_ws.s_len.(i) in
                     let eb = 3 * (boff.(i) + l) in
                     c_ws.s_buf.(eb) <- a;
                     c_ws.s_buf.(eb + 1) <- v;
                     c_ws.s_buf.(eb + 2) <- slack_of_store;
                     c_ws.s_len.(i) <- l + 1;
                     c_ws.s_pc.(i) <- pc + 1
                   end
               | Load (a, r) ->
                   let v =
                     if forwarded_ws c_ws i a then !fwd_hit else c_ws.s_mem.(a)
                   in
                   c_ws.s_regs.((i * regs) + r) <- v;
                   c_ws.s_pc.(i) <- pc + 1
               | Loadeq (a, v0, skip) ->
                   let v =
                     if forwarded_ws c_ws i a then !fwd_hit else c_ws.s_mem.(a)
                   in
                   c_ws.s_pc.(i) <- (if v = v0 then pc + 1 + skip else pc + 1)
               | Fence -> c_ws.s_pc.(i) <- pc + 1
               | Cas (a, expected, desired, r) ->
                   (* x86 locked RMW: requires an empty store buffer (it
                      is drained first) and acts directly on memory. *)
                   let cur = c_ws.s_mem.(a) in
                   if cur = expected then begin
                     c_ws.s_mem.(a) <- desired;
                     c_ws.s_regs.((i * regs) + r) <- 1
                   end
                   else c_ws.s_regs.((i * regs) + r) <- 0;
                   c_ws.s_pc.(i) <- pc + 1
               | Wait d ->
                   c_ws.s_pc.(i) <- pc + 1;
                   c_ws.s_wait.(i) <- d);
               push_child sl cls
             end);
            if not cc then explored := !explored lor (1 lsl (n + i))
          end
        end
      done;
      (* Idle: time passes with nobody executing an instruction. Needed so
         that waiting threads can unblock; only enabled while someone
         waits, to keep the state space finite.

         Time-leap aging, part 1: when no thread can execute an
         instruction (every unfinished thread is mid-wait), the only
         actions besides idling are drains — and a drain after j idle
         ticks reaches exactly the state of draining now and idling j
         ticks.  So instead of idling one tick at a time through a quiet
         stretch we leap straight to the next wakeup, pruning the branch
         if a deadline would expire strictly inside the leap (exactly
         what tick-by-tick idling would conclude). *)
      let any_wait = ref false in
      for i = 0 to n - 1 do
        if a_ws.s_wait.(i) > 0 then any_wait := true
      done;
      if !any_wait then begin
        let can_instr = ref false in
        for i = 0 to n - 1 do
          if a_ws.s_wait.(i) = 0 && a_ws.s_pc.(i) < Array.length programs.(i)
          then can_instr := true
        done;
        let k =
          if !can_instr then 1
          else begin
            let m = ref max_int in
            for i = 0 to n - 1 do
              if a_ws.s_wait.(i) > 0 && a_ws.s_wait.(i) < !m then
                m := a_ws.s_wait.(i)
            done;
            !m
          end
        in
        copy_ws c_ws a_ws;
        if age_ws c_ws k then begin
          if k > 1 then incr time_leaps;
          (* Idling commutes with every drain (draining first is the
             weaker feasibility requirement), so the drain bits of
             the accumulated sleep set survive the idle step.
             Instruction bits do not: idling can expire a wait and
             change which instructions are enabled. *)
          push_child (!explored land drain_mask) 0
        end
      end
    end
  in
  let expand sleep slcls =
    Span.start ph_expand;
    expand_ws sleep slcls;
    Span.stop ph_expand;
    Span.items ph_expand 1
  in
  (* --- Engine 1: sleep-set worklist (the PR 4–8 engine, kept verbatim
     as the [dpor:false] baseline the dpor-sweep compares against). --- *)
  let run_worklist () =
    (match init with
    | [] -> push_child 0 0 (* fresh scratch is all zeros already *)
    | seeds ->
        List.iter (fun (key, sl, cls) -> wl_push (intern_key key) sl cls) seeds);
    let looping = ref true in
    while !looping do
      (match frontier_limit with
      | Some lim when !wl_sp >= lim ->
          (* Frontier hand-off: stop here and export the un-popped
             worklist as seeds for other enumerate_core calls (the
             parallel driver's phase-1 split). Not an exhaustion — the
             seeds carry the remaining work. *)
          for idx = !wl_sp - 1 downto 0 do
            seeds_out :=
              (key_of_id !wl_id.(idx), !wl_sleep.(idx), !wl_cls.(idx))
              :: !seeds_out
          done;
          looping := false;
          wl_sp := 0
      | _ -> ());
      if !looping then
        if !wl_sp = 0 then looping := false
        else begin
          decr wl_sp;
          let id = !wl_id.(!wl_sp) in
          let sleep = !wl_sleep.(!wl_sp) in
          let slcls = !wl_cls.(!wl_sp) in
          decr frontier;
          let prev = !sleeps.(id) in
          if prev < 0 then
            if !visited >= max_states then begin
              (* Budget exhausted: report a typed partial result instead
                 of failing from deep inside the exploration. Under
                 [handoff] the refused state and the un-popped worklist
                 become seeds — the work is handed back, not lost. *)
              exhausted := true;
              (if handoff then begin
                 seeds_out := (key_of_id id, sleep, slcls) :: !seeds_out;
                 for idx = !wl_sp - 1 downto 0 do
                   seeds_out :=
                     (key_of_id !wl_id.(idx), !wl_sleep.(idx), !wl_cls.(idx))
                     :: !seeds_out
                 done
               end);
              looping := false;
              wl_sp := 0
            end
            else begin
              incr visited;
              !sleeps.(id) <- sleep;
              !slclss.(id) <- slcls;
              decode_ws !key_off.(id) a_ws;
              expand sleep slcls
            end
          else if
            (* Already expanded. If the previous visit slept on a subset
               of our sleep set it explored everything we would;
               otherwise re-expand with the intersection (the standard
               sleep-set state-matching rule). *)
            prev land lnot sleep = 0
          then incr dedup_hits
          else begin
            let merged = prev land sleep in
            !sleeps.(id) <- merged;
            !slclss.(id) <- slcls;
            decode_ws !key_off.(id) a_ws;
            expand merged slcls
          end
        end
    done
  in
  (* --- Engine 2: source-DPOR DFS with wakeup sequences.

     An explicit DFS over the same interned state space, where
     first-visit branching is reduced: at a {e timer-free} state (all
     waits zero, all buffered slacks ∞ — where one aging tick is the
     identity and commutation is exactly footprint disjointness) only
     the actions demanded by the source set are expanded: the first
     eligible action, plus every action a detected race proves
     necessary. Timer states (live deadlines or wake timers, where
     timing makes almost everything dependent) expand fully, so the
     reduction degrades to plain sleep sets exactly where the classical
     independence argument stops applying. Zone canonicalization
     ∞-saturates deadlines beyond the observability horizon, so even
     TBTSO runs spend much of their space in reduced (timer-free)
     states.

     Race detection is a backward walk over the DFS stack per executed
     event: each frame stores its in-flight action's footprint and a
     vector clock over the [2n] action procs (drain proc [i], instruction
     proc [n+i]; clock entries are 1-based stack positions), so the walk
     finds the maximal dependent predecessors that are not already
     happens-before-ordered — each such pair at a reduced frame is a
     reversible race. The reversal is recorded as a wakeup sequence
     [notdep(f, w)·e] at the racing frame ({!Wut}); pending sequences
     replay as guided descents (dedup-skipping disabled along the guide)
     before the frame's free [todo] actions.

     State dedup stays sound under the reduction because the explored
     graph is acyclic (every action strictly decreases the remaining
     action count, idling strictly decreases total wait), so any
     re-encountered interned state has a {e completed} subtree; its
     aggregated per-proc footprint summary ([sum_r]/[sum_w]/[sum_cc])
     is replayed against the stack in place of the skipped events, with
     the classic DPOR fallback (add the racing proc if enabled at the
     reversal frame, otherwise everything) since summaries carry no
     order. Walks stop at counter-creating events, which commute with
     nothing and hence happens-before-order everything across them. *)
  let run_dfs () =
    let idle_bit = nacts in
    let all_acts = (1 lsl nacts) - 1 in
    let no_guide = ([||], 0) in
    let wut_empty = Wut.create () in
    let fcap = ref 128 in
    let f_id = ref (Array.make !fcap 0) in
    let f_sleep = ref (Array.make !fcap 0) in
    let f_cls = ref (Array.make !fcap 0) in
    let f_enab = ref (Array.make !fcap 0) in
    let f_done = ref (Array.make !fcap 0) in
    let f_todo = ref (Array.make !fcap 0) in
    let f_red = ref (Array.make !fcap false) in
    let f_act = ref (Array.make !fcap (-1)) in
    let f_afpr = ref (Array.make !fcap 0) in
    let f_afpw = ref (Array.make !fcap 0) in
    let f_acc = ref (Array.make !fcap false) in
    let f_vc = ref (Array.make (!fcap * sum_stride) 0) in
    let f_sumr = ref (Array.make (!fcap * sum_stride) 0) in
    let f_sumw = ref (Array.make (!fcap * sum_stride) 0) in
    let f_sumcc = ref (Array.make !fcap 0) in
    let f_wut = ref (Array.make !fcap wut_empty) in
    let f_guide = ref (Array.make !fcap no_guide) in
    let grow_frames () =
      let old = !fcap in
      fcap := 2 * old;
      let grow a fill =
        let a' = Array.make !fcap fill in
        Array.blit !a 0 a' 0 old;
        a := a'
      in
      let grow_strided a =
        let a' = Array.make (!fcap * sum_stride) 0 in
        Array.blit !a 0 a' 0 (old * sum_stride);
        a := a'
      in
      grow f_id 0;
      grow f_sleep 0;
      grow f_cls 0;
      grow f_enab 0;
      grow f_done 0;
      grow f_todo 0;
      grow f_act (-1);
      grow f_afpr 0;
      grow f_afpw 0;
      grow f_sumcc 0;
      grow_strided f_vc;
      grow_strided f_sumr;
      grow_strided f_sumw;
      let growb a =
        let a' = Array.make !fcap false in
        Array.blit !a 0 a' 0 old;
        a := a'
      in
      growb f_red;
      growb f_acc;
      let groww () =
        let a' = Array.make !fcap wut_empty in
        Array.blit !f_wut 0 a' 0 old;
        f_wut := a'
      in
      groww ();
      let growg () =
        let a' = Array.make !fcap no_guide in
        Array.blit !f_guide 0 a' 0 old;
        f_guide := a'
      in
      growg ()
    in
    let sp = ref (-1) in
    let loaded = ref (-1) in
    let aborting = ref false in
    (* Undo scratch for the in-place step: the words one
       age/mutate/canon cycle can touch — waits, every live slack, and
       (per action kind) one thread's buffer plus single mem/reg/pc/len
       cells. *)
    let u_wait = Array.make (max n 1) 0 in
    let u_slack = Array.make (max total_cap 1) 0 in
    let u_buf = Array.make (max (3 * total_cap) 1) 0 in
    let u_mem = ref 0 and u_reg = ref 0 and u_pc = ref 0 and u_len = ref 0 in
    let uq = ref 0 in
    let ensure_loaded id =
      if !loaded <> id then begin
        decode_ws !key_off.(id) a_ws;
        loaded := id
      end
    in
    let lowest_bit m =
      let i = ref 0 in
      while m land (1 lsl !i) = 0 do
        incr i
      done;
      !i
    in
    let popcount m =
      let c = ref 0 and x = ref m in
      while !x <> 0 do
        x := !x land (!x - 1);
        incr c
      done;
      !c
    in
    let thread_of a = if a = idle_bit then -1 else if a >= n then a - n else a in
    (* First action expanded at a reduced frame: prefer an instruction
       over a drain — committing a buffered store publishes a write
       other threads race with, so deferring drains lets more of the
       already-explored instruction structure be slept in the children
       before the write-visibility races start forcing reversals. *)
    let instr_mask = ((1 lsl n) - 1) lsl n in
    let pick_one free =
      if free = 0 then 0
      else
        let im = free land instr_mask in
        1 lsl lowest_bit (if im <> 0 then im else free)
    in
    (* Race-walk scratch: the running join of the clocks of every event
       (strictly after the walk's current frame) that happens-before
       the event being executed. *)
    let blocked = Array.make sum_stride 0 in
    let vcap = ref 64 in
    let vbuf = ref (Array.make !vcap 0) in
    let vpos = ref (Array.make !vcap 0) in
    let vpush m j pr =
      if m >= !vcap then begin
        let grow a =
          let a' = Array.make (2 * !vcap) 0 in
          Array.blit !a 0 a' 0 !vcap;
          a := a'
        in
        grow vbuf;
        grow vpos;
        vcap := 2 * !vcap
      end;
      !vbuf.(m) <- pr;
      !vpos.(m) <- j
    in
    (* A reversible race between the in-flight event of frame [k] and
       the event being executed at frame [d] (proc [p]): build the
       wakeup sequence notdep(f, w)·e and insert it at frame [k] under
       the source-set subsumption rules. *)
    let handle_race k d p =
      incr races_detected;
      Span.start ph_wut;
      let fa = !f_act.(k) in
      let m = ref 0 in
      for j = k + 1 to d - 1 do
        let pj = !f_act.(j) in
        (* Keep [j] only when it is in [e]'s causal past within the
           window ([blocked] holds e's clock over frames (k, d) at this
           point of the walk — row [k] is joined after the race check).
           Events independent of both ends need not be replayed before
           the reversal; dropping them keeps wakeup sequences at
           causal-chain length and avoids interning mirror states for
           unrelated interleavings.  Causal closure: i →HB j →HB e with
           vc(i).(fa) ≥ k+1 would put e HB-after fa, contradicting the
           race, so the kept set is replayable at [k]. *)
        if
          pj <> idle_bit
          && !f_vc.((j * sum_stride) + fa) < k + 1
          && blocked.(pj) >= j + 1
        then begin
          vpush !m j pj;
          incr m
        end
      done;
      vpush !m d p;
      incr m;
      (* [e] a drain that is disabled at [k] and whose thread
         contributes no instruction to the sequence: the drained entry
         descends from [fa]'s thread-order successors (same-thread
         events in the window are PO-after [fa], hence excluded), so
         the reversal can never execute [e] — vacuous. *)
      let infeasible =
        p < n
        && !f_enab.(k) land (1 lsl p) = 0
        &&
        let has_store = ref false in
        for a = 0 to !m - 2 do
          if !vbuf.(a) = n + p then has_store := true
        done;
        not !has_store
      in
      let initials = ref 0 in
      for a = 0 to !m - 1 do
        let w = !vbuf.(a) in
        let ja = !vpos.(a) in
        let is_init = ref true in
        for b = 0 to a - 1 do
          let u = !vbuf.(b) and ju = !vpos.(b) in
          let w_after_u =
            if ja = d then blocked.(u) >= ju + 1
            else !f_vc.((ja * sum_stride) + u) >= ju + 1
          in
          if w_after_u then is_init := false
        done;
        if !is_init then initials := !initials lor (1 lsl w)
      done;
      (* An initial already scheduled at [k] (todo/done) subsumes the
         sequence; an initial in the {e sleep} set marks it redundant —
         every trace starting with a slept action is explored under the
         sibling that slept it. *)
      let scheduled = !f_todo.(k) lor !f_done.(k) lor !f_sleep.(k) in
      (* No initial of the reversal sequence is enabled at [k]: the
         reversed order is unschedulable from here (a drain racing its
         own thread's store over an empty buffer, a fence racing the
         drain that enables it), so the race is vacuous. *)
      (if
         (not infeasible)
         && !initials land !f_enab.(k) <> 0
         && !initials land scheduled = 0
       then begin
         let v = Array.sub !vbuf 0 !m in
         if !f_wut.(k) == wut_empty then !f_wut.(k) <- Wut.create ();
         match Wut.insert !f_wut.(k) ~initials:!initials ~scheduled v with
         | `Added -> wut_nodes := !wut_nodes + !m
         | `Subsumed -> ()
       end);
      Span.stop ph_wut;
      Span.items ph_wut 1
    in
    (* Backward race walk for the event executed at frame [d] by proc
       [p] (or [idle_bit]); also computes and stores the event's vector
       clock at slot [d]. *)
    let race_walk d p fpr fpw cc =
      Span.start ph_race;
      Array.fill blocked 0 sum_stride 0;
      let thr_e = thread_of p in
      let k = ref (d - 1) in
      let walking = ref true in
      while !walking && !k >= 0 do
        let fa = !f_act.(!k) in
        let fcc = !f_acc.(!k) in
        let ffpr = !f_afpr.(!k) and ffpw = !f_afpw.(!k) in
        let thr_f = thread_of fa in
        let dep =
          fcc || cc
          || (thr_f >= 0 && thr_f = thr_e)
          || ffpw land (fpr lor fpw) <> 0
          || ffpr land fpw <> 0
        in
        let covered = fa <> idle_bit && blocked.(fa) >= !k + 1 in
        (* Race on action-proc inequality, not real-thread inequality: a
           thread's drain and its own later instruction are distinct
           transitions whose reversal may be schedulable (TSO lets loads
           overtake the thread's own pending drains), yet [dep] above
           conservatively orders them.  Suppressing such races while
           counting the pair as dependent would break the transitive
           coverage argument ([covered] assumes every dependent edge on
           the chain had its reversal recorded). *)
        if
          dep && (not covered) && fa <> p && fa <> idle_bit && p <> idle_bit
          && !f_red.(!k)
        then handle_race !k d p;
        if dep || covered then begin
          let base = !k * sum_stride in
          for q = 0 to nacts - 1 do
            let v = !f_vc.(base + q) in
            if v > blocked.(q) then blocked.(q) <- v
          done
        end;
        if fcc then walking := false;
        decr k
      done;
      let base = d * sum_stride in
      Array.blit blocked 0 !f_vc base sum_stride;
      if p <> idle_bit then !f_vc.(base + p) <- d + 1;
      Span.stop ph_race;
      Span.items ph_race 1
    in
    (* A dedup-skip at child [cid] of frame [d] (reached via the edge
       event [p]/[fpr]/[fpw]/[cc]): replay the skipped subtree's
       per-proc summary against the stack. Summaries carry no order, so
       every dependent pair at a reduced frame counts as a race — but
       per proc we react only at the {e deepest} dependent frame: the
       branch scheduled there re-executes the proc's events as path
       events whose own race walks rediscover any shallower reversals
       (exactly the argument that lets the path walk stop at the first
       non-covered frame). Reacting at every frame would re-expand most
       of the stack and forfeit the reduction. *)
    let summary_replay d p fpr fpw cc cid =
      Span.start ph_race;
      let sbase = cid * sum_stride in
      let scc = !sum_cc.(cid) in
      let react k fa q =
        incr races_detected;
        let bit = 1 lsl q in
        if q >= 0 && !f_enab.(k) land bit <> 0 then begin
          if (!f_todo.(k) lor !f_done.(k) lor !f_sleep.(k)) land bit = 0 then
            !f_todo.(k) <- !f_todo.(k) lor bit
        end
        else if q >= 0 && fa <> idle_bit && thread_of q = thread_of fa then
          (* [q] disabled at [k] and same real thread as the in-flight
             action: nothing in the subtree can enable [q] before [fa]
             runs (only thread [q]'s own program-order-later actions
             change its buffer/pc), so the reversal is vacuous. *)
          ()
        else
          !f_todo.(k) <-
            !f_todo.(k) lor (!f_enab.(k) land lnot !f_sleep.(k) land all_acts)
      in
      (* Procs with summarized events still awaiting their deepest
         dependent frame; bit [nacts] is the proc-less idle marker. *)
      let pending = ref 0 in
      for q = 0 to nacts - 1 do
        if
          !sum_r.(sbase + q) <> 0
          || !sum_w.(sbase + q) <> 0
          || scc land (1 lsl q) <> 0
        then pending := !pending lor (1 lsl q)
      done;
      if scc land (1 lsl nacts) <> 0 then
        pending := !pending lor (1 lsl nacts);
      let k = ref d in
      let walking = ref true in
      while !walking && !k >= 0 && !pending <> 0 do
        let fa, ffpr, ffpw, fcc =
          if !k = d then (p, fpr, fpw, cc)
          else (!f_act.(!k), !f_afpr.(!k), !f_afpw.(!k), !f_acc.(!k))
        in
        let thr_f = thread_of fa in
        (if !f_red.(!k) then begin
           for q = 0 to nacts - 1 do
             if !pending land (1 lsl q) <> 0 then begin
               let qr = !sum_r.(sbase + q) and qw = !sum_w.(sbase + q) in
               let qcc = scc land (1 lsl q) <> 0 in
               let dep =
                 fcc || qcc || thr_f = thread_of q
                 || ffpw land (qr lor qw) <> 0
                 || ffpr land qw <> 0
               in
               if dep && fa <> q && fa <> idle_bit then begin
                 react !k fa q;
                 pending := !pending land lnot (1 lsl q)
               end
             end
           done;
           (* A proc-less timing event (idle) somewhere in the subtree:
              dependent with everything, no proc to schedule — full
              fallback at the deepest reduced frame. *)
           if !pending land (1 lsl nacts) <> 0 && thr_f >= 0 then begin
             react !k fa (-1);
             pending := !pending land lnot (1 lsl nacts)
           end
         end);
        if fcc then walking := false;
        decr k
      done;
      Span.stop ph_race;
      Span.items ph_race 1
    in
    let fold_summary_into_frame k cid =
      let fb = k * sum_stride and sb = cid * sum_stride in
      for q = 0 to nacts - 1 do
        !f_sumr.(fb + q) <- !f_sumr.(fb + q) lor !sum_r.(sb + q);
        !f_sumw.(fb + q) <- !f_sumw.(fb + q) lor !sum_w.(sb + q)
      done;
      !f_sumcc.(k) <- !f_sumcc.(k) lor !sum_cc.(cid)
    in
    let close_frame () =
      let k = !sp in
      let id = !f_id.(k) in
      if !f_red.(k) then
        source_set_hits :=
          !source_set_hits
          + popcount
              (!f_enab.(k) land lnot !f_sleep.(k) land lnot !f_done.(k)
             land all_acts);
      let sb = id * sum_stride and fb = k * sum_stride in
      for q = 0 to nacts - 1 do
        !sum_r.(sb + q) <- !sum_r.(sb + q) lor !f_sumr.(fb + q);
        !sum_w.(sb + q) <- !sum_w.(sb + q) lor !f_sumw.(fb + q)
      done;
      !sum_cc.(id) <- !sum_cc.(id) lor !f_sumcc.(k);
      decr sp;
      if !sp >= 0 then begin
        let pk = !sp in
        let a = !f_act.(pk) in
        !f_done.(pk) <- !f_done.(pk) lor (1 lsl a);
        !f_act.(pk) <- -1;
        fold_summary_into_frame pk id
      end
    in
    let rec open_frame id sleep cls guide =
      if !visited >= max_states then begin
        exhausted := true;
        aborting := true;
        if handoff then seeds_out := (key_of_id id, sleep, cls) :: !seeds_out
      end
      else begin
        incr visited;
        incr sp;
        if !sp >= !fcap then grow_frames ();
        let k = !sp in
        !sleeps.(id) <- sleep;
        !slclss.(id) <- cls;
        !f_id.(k) <- id;
        !f_sleep.(k) <- sleep;
        !f_cls.(k) <- cls;
        !f_done.(k) <- 0;
        !f_act.(k) <- -1;
        !f_guide.(k) <- guide;
        !f_wut.(k) <- wut_empty;
        !f_sumcc.(k) <- 0;
        Array.fill !f_sumr (k * sum_stride) sum_stride 0;
        Array.fill !f_sumw (k * sum_stride) sum_stride 0;
        if k + 1 > !max_frontier then max_frontier := k + 1;
        ensure_loaded id;
        let enab = ref 0 in
        let any_wait = ref false in
        let timer_free = ref true in
        let terminal = ref true in
        for i = 0 to n - 1 do
          if a_ws.s_len.(i) > 0 then begin
            enab := !enab lor (1 lsl i);
            terminal := false;
            let b = 3 * boff.(i) in
            for j = 0 to a_ws.s_len.(i) - 1 do
              if a_ws.s_buf.(b + (3 * j) + 2) <> max_int then timer_free := false
            done
          end;
          if a_ws.s_wait.(i) > 0 then begin
            any_wait := true;
            timer_free := false;
            terminal := false
          end;
          if a_ws.s_pc.(i) < Array.length programs.(i) then terminal := false;
          if instr_enabled_ws i a_ws then enab := !enab lor (1 lsl (n + i))
        done;
        if !terminal then begin
          let o =
            {
              regs = Array.init n (fun i -> Array.sub a_ws.s_regs (i * regs) regs);
              mem = Array.copy a_ws.s_mem;
            }
          in
          Hashtbl.replace outcomes o ();
          !f_enab.(k) <- 0;
          !f_red.(k) <- false;
          !f_todo.(k) <- 0;
          close_frame ()
        end
        else begin
          if !any_wait then enab := !enab lor (1 lsl idle_bit);
          !f_enab.(k) <- !enab;
          !f_red.(k) <- !timer_free;
          (* Per-class skip stats, one per slept enabled action (same
             accounting as the worklist engine). *)
          let slept = !enab land sleep land all_acts in
          if slept <> 0 then
            for bit = 0 to nacts - 1 do
              if slept land (1 lsl bit) <> 0 then count_skip cls bit
            done;
          let gseq, gidx = guide in
          if Array.length gseq > gidx then begin
            let ga = gseq.(gidx) in
            if !enab land (1 lsl ga) <> 0 && sleep land (1 lsl ga) = 0 then
              (* The guide drives. Wakeup replays only traverse
                 timer-free states (races are only detected there, and
                 non-counter-creating actions preserve timer-freedom),
                 but if one ever lands on a timer state keep the full
                 expansion alongside the guided action. *)
              !f_todo.(k) <- (if !timer_free then 0 else !enab land lnot sleep)
            else begin
              (* The guided action is not replayable here.  Slept: every
                 continuation starting with it is covered by the sibling
                 that slept it.  Disabled: only its own thread's events
                 could enable it, and those are either already replayed
                 (members of the sequence) or PO-after the raced action
                 the sequence reverses — so the encoded reversal is
                 infeasible from this prefix.  Either way, truncate the
                 guide and continue with the normal reduced expansion;
                 dependent pairs met below get their own race walks. *)
              !f_guide.(k) <- no_guide;
              if !timer_free then begin
                let free = !enab land lnot sleep land all_acts in
                !f_todo.(k) <- pick_one free
              end
              else !f_todo.(k) <- !enab land lnot sleep
            end
          end
          else if !timer_free then begin
            let free = !enab land lnot sleep land all_acts in
            !f_todo.(k) <- pick_one free
          end
          else !f_todo.(k) <- !enab land lnot sleep
        end
      end
    (* Execute action [a] from the (already loaded) state of frame [k]:
       save the touched words, age + mutate + canonicalize the parent
       scratch in place, intern the child, then undo — no per-child
       state copy. [cguide] is the guide the child frame inherits. *)
    and exec k a cguide =
      Span.start ph_expand;
      let id = !f_id.(k) in
      ensure_loaded id;
      let explored = !f_sleep.(k) lor !f_done.(k) in
      let afpr = ref 0 and afpw = ref 0 and acc = ref false in
      let csl = ref 0 and ccls = ref 0 in
      let e_addr = ref (-1) in
      let leap = ref 1 in
      (if a = idle_bit then begin
         acc := true;
         let can_instr = ref false in
         for i = 0 to n - 1 do
           if a_ws.s_wait.(i) = 0 && a_ws.s_pc.(i) < Array.length programs.(i)
           then can_instr := true
         done;
         (if not !can_instr then begin
            let m = ref max_int in
            for i = 0 to n - 1 do
              if a_ws.s_wait.(i) > 0 && a_ws.s_wait.(i) < !m then
                m := a_ws.s_wait.(i)
            done;
            leap := !m
          end);
         csl := explored land drain_mask;
         ccls := 0
       end
       else if a < n then begin
         let eb = 3 * boff.(a) in
         e_addr := a_ws.s_buf.(eb);
         let e_slack = a_ws.s_buf.(eb + 2) in
         afpw := addr_bit !e_addr;
         child_sleep a_ws explored ~acting:a ~drain:true
           ~addr_mask:(addr_bit !e_addr) ~guard:(e_slack >= 2);
         csl := !sl_out;
         ccls := !cls_out
       end
       else begin
         let i = a - n in
         acc := cc_instr_ws i a_ws;
         if !acc then begin
           csl := 0;
           ccls := 0
         end
         else begin
           footprint_ws i a_ws;
           afpr := !fp_r;
           afpw := !fp_w;
           child_sleep a_ws explored ~acting:i ~drain:false ~addr_mask:0
             ~guard:false;
           csl := !sl_out;
           ccls := !cls_out
         end
       end);
      (* Save the words aging / canon / the mutation can touch. *)
      Array.blit a_ws.s_wait 0 u_wait 0 n;
      uq := 0;
      for i = 0 to n - 1 do
        let b = 3 * boff.(i) in
        for j = 0 to a_ws.s_len.(i) - 1 do
          u_slack.(!uq) <- a_ws.s_buf.(b + (3 * j) + 2);
          incr uq
        done
      done;
      let ok = age_ws a_ws !leap in
      let cid = ref (-1) in
      if ok then begin
        (if a = idle_bit then ()
         else if a < n then begin
           let eb = 3 * boff.(a) in
           u_mem := a_ws.s_mem.(!e_addr);
           u_len := a_ws.s_len.(a);
           Array.blit a_ws.s_buf eb u_buf 0 (3 * !u_len);
           a_ws.s_mem.(!e_addr) <- a_ws.s_buf.(eb + 1);
           Array.blit a_ws.s_buf (eb + 3) a_ws.s_buf eb (3 * (!u_len - 1));
           a_ws.s_len.(a) <- !u_len - 1
         end
         else begin
           let i = a - n in
           let pc = a_ws.s_pc.(i) in
           u_pc := pc;
           match programs.(i).(pc) with
           | Store (ad, v) ->
               if mode = M_sc then begin
                 e_addr := ad;
                 u_mem := a_ws.s_mem.(ad);
                 a_ws.s_mem.(ad) <- v;
                 a_ws.s_pc.(i) <- pc + 1
               end
               else begin
                 let l = a_ws.s_len.(i) in
                 u_len := l;
                 let eb = 3 * (boff.(i) + l) in
                 a_ws.s_buf.(eb) <- ad;
                 a_ws.s_buf.(eb + 1) <- v;
                 a_ws.s_buf.(eb + 2) <- slack_of_store;
                 a_ws.s_len.(i) <- l + 1;
                 a_ws.s_pc.(i) <- pc + 1
               end
           | Load (ad, r) ->
               let v =
                 if forwarded_ws a_ws i ad then !fwd_hit else a_ws.s_mem.(ad)
               in
               u_reg := a_ws.s_regs.((i * regs) + r);
               a_ws.s_regs.((i * regs) + r) <- v;
               a_ws.s_pc.(i) <- pc + 1
           | Loadeq (ad, v0, skip) ->
               let v =
                 if forwarded_ws a_ws i ad then !fwd_hit else a_ws.s_mem.(ad)
               in
               a_ws.s_pc.(i) <- (if v = v0 then pc + 1 + skip else pc + 1)
           | Fence -> a_ws.s_pc.(i) <- pc + 1
           | Cas (ad, expected, desired, r) ->
               e_addr := ad;
               u_mem := a_ws.s_mem.(ad);
               u_reg := a_ws.s_regs.((i * regs) + r);
               let cur = a_ws.s_mem.(ad) in
               if cur = expected then begin
                 a_ws.s_mem.(ad) <- desired;
                 a_ws.s_regs.((i * regs) + r) <- 1
               end
               else a_ws.s_regs.((i * regs) + r) <- 0;
               a_ws.s_pc.(i) <- pc + 1
           | Wait d ->
               a_ws.s_pc.(i) <- pc + 1;
               a_ws.s_wait.(i) <- d
         end);
        canon_ws a_ws;
        cid := intern a_ws
      end;
      (* Undo: action-specific words first (restoring the lengths), then
         the wait/slack base. On a dead end (failed aging) only the
         aging itself happened, so the base restore suffices. *)
      (if a = idle_bit || not ok then ()
       else if a < n then begin
         a_ws.s_len.(a) <- !u_len;
         Array.blit u_buf 0 a_ws.s_buf (3 * boff.(a)) (3 * !u_len);
         a_ws.s_mem.(!e_addr) <- !u_mem
       end
       else begin
         let i = a - n in
         (match programs.(i).(!u_pc) with
         | Store _ ->
             if mode = M_sc then a_ws.s_mem.(!e_addr) <- !u_mem
             else a_ws.s_len.(i) <- !u_len
         | Load (_, r) -> a_ws.s_regs.((i * regs) + r) <- !u_reg
         | Loadeq _ | Fence -> ()
         | Cas (_, _, _, r) ->
             a_ws.s_mem.(!e_addr) <- !u_mem;
             a_ws.s_regs.((i * regs) + r) <- !u_reg
         | Wait _ -> ());
         a_ws.s_pc.(i) <- !u_pc
       end);
      Array.blit u_wait 0 a_ws.s_wait 0 n;
      uq := 0;
      for i = 0 to n - 1 do
        let b = 3 * boff.(i) in
        for j = 0 to a_ws.s_len.(i) - 1 do
          a_ws.s_buf.(b + (3 * j) + 2) <- u_slack.(!uq);
          incr uq
        done
      done;
      Span.stop ph_expand;
      Span.items ph_expand 1;
      if not ok then !f_done.(k) <- !f_done.(k) lor (1 lsl a)
      else begin
        if !leap > 1 then incr time_leaps;
        race_walk k a !afpr !afpw !acc;
        (if a <> idle_bit then begin
           let fb = (k * sum_stride) + a in
           !f_sumr.(fb) <- !f_sumr.(fb) lor !afpr;
           !f_sumw.(fb) <- !f_sumw.(fb) lor !afpw;
           if !acc then !f_sumcc.(k) <- !f_sumcc.(k) lor (1 lsl a)
         end
         else !f_sumcc.(k) <- !f_sumcc.(k) lor (1 lsl nacts));
        let cid = !cid in
        let prev = !sleeps.(cid) in
        let cseq, cidx = cguide in
        let guided = Array.length cseq > cidx in
        if (not guided) && prev >= 0 && prev land lnot !csl = 0 then begin
          incr dedup_hits;
          summary_replay k a !afpr !afpw !acc cid;
          fold_summary_into_frame k cid;
          !f_done.(k) <- !f_done.(k) lor (1 lsl a)
        end
        else begin
          let sl = if prev >= 0 then prev land !csl else !csl in
          !f_act.(k) <- a;
          !f_afpr.(k) <- !afpr;
          !f_afpw.(k) <- !afpw;
          !f_acc.(k) <- !acc;
          open_frame cid sl !ccls cguide
        end
      end
    in
    let step () =
      let k = !sp in
      let gseq, gidx = !f_guide.(k) in
      if Array.length gseq > gidx then begin
        (* One guided action per frame; the suffix rides down with the
           child. Feasibility was checked at frame open. *)
        !f_guide.(k) <- no_guide;
        exec k gseq.(gidx) (gseq, gidx + 1)
      end
      else if !f_wut.(k) != wut_empty && Wut.pending !f_wut.(k) then begin
        Span.start ph_wut;
        let v = match Wut.take !f_wut.(k) with Some v -> v | None -> [||] in
        Span.stop ph_wut;
        let h = v.(0) in
        if !f_sleep.(k) land (1 lsl h) <> 0 then ()
          (* covered: every trace starting with a slept action is
             explored under the sibling that put it to sleep *)
        else if !f_enab.(k) land (1 lsl h) = 0 then
          (* Not replayable (should not happen for a path-derived
             sequence): fall back to full expansion. *)
          !f_todo.(k) <-
            !f_todo.(k) lor (!f_enab.(k) land lnot !f_sleep.(k) land all_acts)
        else exec k h (v, 1)
      end
      else begin
        let avail = !f_todo.(k) land lnot !f_done.(k) land lnot !f_sleep.(k) in
        if avail = 0 then close_frame ()
        else exec k (lowest_bit avail) no_guide
      end
    in
    let enter_root id sleep cls =
      let prev = !sleeps.(id) in
      if prev >= 0 && prev land lnot sleep = 0 then incr dedup_hits
      else begin
        let sl = if prev >= 0 then prev land sleep else sleep in
        open_frame id sl cls no_guide;
        while !sp >= 0 && not !aborting do
          step ()
        done;
        if !aborting then begin
          (if handoff then
             (* Every open frame becomes a seed: its completed actions
                are slept out (their subtrees are done here), and its
                in-flight action is slept too — the refused child (or
                the next collected frame) is the seed covering that
                subtree.

                Deliberately, a seed carries ONLY the sleep and class
                masks — no wakeup-tree or pending-race state crosses
                the hand-off.  That is sound because source-DPOR
                completeness is a per-tree argument: for any root
                whose slept actions each have a fully completed (or
                separately seeded) subtree, exploring the remaining
                enabled actions with fresh race detection plants
                every wakeup sequence the subtree needs, so every
                Mazurkiewicz class not already owned by a slept
                action is still reached.  The parent's outstanding
                wakeup demands only direct traces into subtrees that
                some emitted seed owns outright, so dropping them
                loses nothing.  The cost is conservatism rather than
                unsoundness: sibling seeds re-intern shared suffixes
                (states are deduplicated globally, so outcome sets
                stay exact — pinned by the forced-steal differentials
                in test_par.ml and test_scenario.ml). *)
             for k = 0 to !sp do
               let inflight =
                 if !f_act.(k) >= 0 then 1 lsl !f_act.(k) else 0
               in
               seeds_out :=
                 ( key_of_id !f_id.(k),
                   !f_sleep.(k) lor !f_done.(k) lor inflight,
                   !f_cls.(k) )
                 :: !seeds_out
             done);
          sp := -1
        end
      end
    in
    let roots =
      match init with
      | [] -> [ (intern c_ws, 0, 0) ] (* fresh scratch is all zeros *)
      | seeds ->
          List.map (fun (key, sl, cls) -> (intern_key key, sl, cls)) seeds
    in
    List.iter
      (fun (id, sl, cls) ->
        if not !aborting then enter_root id sl cls
        else if handoff then seeds_out := (key_of_id id, sl, cls) :: !seeds_out)
      roots
  in
  if dpor then run_dfs () else run_worklist ();
  let all = Hashtbl.fold (fun o () acc -> o :: acc) outcomes [] in
  let outcomes = List.sort compare all in
  ( {
      outcomes;
      complete = not !exhausted;
      stats =
        {
          visited = !visited;
          dedup_hits = !dedup_hits;
          canon_hits = !canon_hits;
          zones_merged = !zones_merged;
          max_frontier = !max_frontier;
          time_leaps = !time_leaps;
          sleep_skips = !sleep_skips;
          dd_skips = !dd_skips;
          di_skips = !di_skips;
          ii_skips = !ii_skips;
          races_detected = !races_detected;
          wut_nodes = !wut_nodes;
          source_set_hits = !source_set_hits;
          frontier_steals = 0;
          (* set by the parallel driver *)
          elapsed = Sys.time () -. t0;
        };
    },
    (!nstates, !arena_growths, !arena_used, List.rev !seeds_out) )

(* Intra-exploration parallelism: a sequential phase 1 runs the plain
   worklist engine until the frontier holds a few seeds per domain,
   then exports the un-popped worklist as packed-key seeds. Each seed
   becomes an independent [enumerate_core] task (own arena, no shared
   mutable state) under a per-task state budget; a task that exhausts
   its budget hands its own frontier back as new seeds, and the budget
   doubles every round so the rounds terminate. Outcomes merge by set
   union and are sorted exactly like the sequential path, so the
   outcome list and completeness verdict are byte-identical to a
   sequential run — only the stats (which count work, not results)
   differ. *)
let explore_par ~mode ~addrs ~regs ~max_states ~profiler ~dpor ~task_budget pool
    programs =
  let t0 = Sys.time () in
  let d = Tbtso_par.Pool.domains pool in
  let r1, (_, _, _, seeds) =
    enumerate_core ~mode ~addrs ~regs ~max_states ~profiler ~dpor:false
      ~frontier_limit:(4 * d) ~handoff:true programs
  in
  if seeds = [] then r1
  else begin
    let outcomes = Hashtbl.create 64 in
    List.iter (fun o -> Hashtbl.replace outcomes o ()) r1.outcomes;
    let st = ref r1.stats in
    let total_visited = ref r1.stats.visited in
    let steals = ref 0 in
    let complete = ref r1.complete in
    let pending = ref seeds in
    let budget = ref (match task_budget with Some b -> max b 16 | None -> 4096) in
    while !pending <> [] && !complete do
      let batch = Array.of_list !pending in
      pending := [];
      steals := !steals + Array.length batch;
      let results =
        Tbtso_par.Pool.map ~chunk:1 pool
          (fun seed ->
            enumerate_core ~mode ~addrs ~regs ~max_states:!budget
              ~profiler:Span.disabled ~dpor ~init:[ seed ] ~handoff:true
              programs)
          batch
      in
      Array.iter
        (fun (r, (_, _, _, hand)) ->
          List.iter (fun o -> Hashtbl.replace outcomes o ()) r.outcomes;
          total_visited := !total_visited + r.stats.visited;
          let s = !st and t = r.stats in
          st :=
            {
              visited = s.visited + t.visited;
              dedup_hits = s.dedup_hits + t.dedup_hits;
              canon_hits = s.canon_hits + t.canon_hits;
              zones_merged = s.zones_merged + t.zones_merged;
              max_frontier = max s.max_frontier t.max_frontier;
              time_leaps = s.time_leaps + t.time_leaps;
              sleep_skips = s.sleep_skips + t.sleep_skips;
              dd_skips = s.dd_skips + t.dd_skips;
              di_skips = s.di_skips + t.di_skips;
              ii_skips = s.ii_skips + t.ii_skips;
              races_detected = s.races_detected + t.races_detected;
              wut_nodes = s.wut_nodes + t.wut_nodes;
              source_set_hits = s.source_set_hits + t.source_set_hits;
              frontier_steals = 0;
              elapsed = 0.;
            };
          pending := hand @ !pending)
        results;
      if !total_visited >= max_states then begin
        complete := false;
        pending := []
      end;
      budget := 2 * !budget
    done;
    let all = Hashtbl.fold (fun o () acc -> o :: acc) outcomes [] in
    {
      outcomes = List.sort compare all;
      complete = !complete;
      stats =
        {
          !st with
          frontier_steals = !steals;
          elapsed = Sys.time () -. t0;
        };
    }
  end

let explore ~mode ?(addrs = 4) ?(regs = 4) ?(max_states = default_max_states)
    ?(profiler = Span.disabled) ?(dpor = false) ?pool ?task_budget programs =
  match pool with
  | Some pool when Tbtso_par.Pool.domains pool > 1 ->
      explore_par ~mode ~addrs ~regs ~max_states ~profiler ~dpor ~task_budget
        pool programs
  | _ ->
      fst (enumerate_core ~mode ~addrs ~regs ~max_states ~profiler ~dpor programs)

let enumerate ~mode ?(addrs = 4) ?(regs = 4) ?(max_states = default_max_states)
    programs =
  let r =
    fst
      (enumerate_core ~mode ~addrs ~regs ~max_states ~profiler:Span.disabled
         programs)
  in
  if not r.complete then
    failwith
      (Printf.sprintf "Litmus.enumerate: state space exceeds %d states" max_states);
  r.outcomes

(* --- Reference enumerator ---

   The original recursive, tick-by-tick, string-keyed implementation,
   kept verbatim as the differential-testing oracle: the optimized
   checker above must produce the identical outcome set on every
   program.  Do not "improve" this one. *)

let key_of_state s =
  let b = Buffer.create 64 in
  Array.iter
    (fun v ->
      Buffer.add_string b (string_of_int v);
      Buffer.add_char b ',')
    s.mem_v;
  Array.iter
    (fun t ->
      Buffer.add_char b '|';
      Buffer.add_string b (string_of_int t.pc);
      Buffer.add_char b ';';
      Buffer.add_string b (string_of_int t.wait);
      Buffer.add_char b ';';
      Array.iter
        (fun v ->
          Buffer.add_string b (string_of_int v);
          Buffer.add_char b ',')
        t.regs_v;
      List.iter
        (fun e ->
          Buffer.add_string b (string_of_int e.addr);
          Buffer.add_char b ':';
          Buffer.add_string b (string_of_int e.value);
          Buffer.add_char b ':';
          Buffer.add_string b (string_of_int e.slack);
          Buffer.add_char b ' ')
        t.buf)
    s.threads;
  Buffer.contents b

let enumerate_reference ~mode ?(addrs = 4) ?(regs = 4)
    ?(max_states = default_max_states) programs =
  let programs = Array.of_list (List.map Array.of_list programs) in
  let n = Array.length programs in
  let init =
    {
      mem_v = Array.make addrs 0;
      threads =
        Array.init n (fun _ ->
            { pc = 0; regs_v = Array.make regs 0; wait = 0; buf = [] });
    }
  in
  let seen = Hashtbl.create 4096 in
  let outcomes = Hashtbl.create 64 in
  let visited = ref 0 in
  let slack_of_store =
    match mode with M_tbtso d -> d | M_sc | M_tso | M_tsos _ -> max_int
  in
  let buffer_capacity =
    match mode with M_tsos s -> s | M_sc | M_tso | M_tbtso _ -> max_int
  in
  let rec explore state =
    let key = key_of_state state in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      incr visited;
      if !visited > max_states then
        failwith
          (Printf.sprintf "Litmus.enumerate: state space exceeds %d states"
             max_states);
      let progressed = ref false in
      let step f =
        (* Apply an action: first age the state by one tick, then mutate. *)
        match age state with
        | None -> ()
        | Some aged ->
            progressed := true;
            explore (f aged)
      in
      let with_thread st i t =
        let threads = Array.copy st.threads in
        threads.(i) <- t;
        { st with threads }
      in
      for i = 0 to n - 1 do
        let t = state.threads.(i) in
        (* Drain action: commit this thread's oldest buffered store. *)
        (match t.buf with
        | e :: rest ->
            step (fun st ->
                let t = st.threads.(i) in
                let e', rest' =
                  match t.buf with e' :: r -> (e', r) | [] -> assert false
                in
                ignore e';
                let mem_v = Array.copy st.mem_v in
                mem_v.(e.addr) <- e.value;
                ignore rest;
                { (with_thread st i { t with buf = rest' }) with mem_v })
        | [] -> ());
        (* Instruction action. *)
        if t.wait = 0 && t.pc < Array.length programs.(i) then begin
          match programs.(i).(t.pc) with
          | Store (a, v) ->
              (* Under TSO[S] a store is enabled only when the buffer has
                 room (spatial bound). *)
              if List.length t.buf < buffer_capacity then
                step (fun st ->
                    let t = st.threads.(i) in
                    if mode = M_sc then begin
                      let mem_v = Array.copy st.mem_v in
                      mem_v.(a) <- v;
                      { (with_thread st i { t with pc = t.pc + 1 }) with mem_v }
                    end
                    else
                      let buf =
                        t.buf @ [ { addr = a; value = v; slack = slack_of_store } ]
                      in
                      with_thread st i { t with pc = t.pc + 1; buf })
          | Load (a, r) ->
              step (fun st ->
                  let t = st.threads.(i) in
                  let v =
                    match forward t.buf a with Some v -> v | None -> st.mem_v.(a)
                  in
                  let regs_v = Array.copy t.regs_v in
                  regs_v.(r) <- v;
                  with_thread st i { t with pc = t.pc + 1; regs_v })
          | Loadeq (a, v0, skip) ->
              step (fun st ->
                  let t = st.threads.(i) in
                  let v =
                    match forward t.buf a with Some v -> v | None -> st.mem_v.(a)
                  in
                  let pc = if v = v0 then t.pc + 1 + skip else t.pc + 1 in
                  with_thread st i { t with pc })
          | Fence ->
              if t.buf = [] then
                step (fun st ->
                    let t = st.threads.(i) in
                    with_thread st i { t with pc = t.pc + 1 })
          | Cas (a, expected, desired, r) ->
              (* x86 locked RMW: requires an empty store buffer (it is
                 drained first) and acts directly on memory. *)
              if t.buf = [] then
                step (fun st ->
                    let t = st.threads.(i) in
                    let cur = st.mem_v.(a) in
                    let regs_v = Array.copy t.regs_v in
                    let mem_v = Array.copy st.mem_v in
                    if cur = expected then begin
                      mem_v.(a) <- desired;
                      regs_v.(r) <- 1
                    end
                    else regs_v.(r) <- 0;
                    { (with_thread st i { t with pc = t.pc + 1; regs_v }) with
                      mem_v
                    })
          | Wait d ->
              step (fun st ->
                  let t = st.threads.(i) in
                  with_thread st i { t with pc = t.pc + 1; wait = d })
        end
      done;
      (* Idle tick: time passes with nobody acting. Needed so that waiting
         threads can unblock when everyone else is done; harmless (and
         behaviour-enlarging) otherwise, but only enabled when someone is
         waiting, to keep the state space finite. *)
      if Array.exists (fun t -> t.wait > 0) state.threads then step (fun st -> st);
      (* Terminal state: all threads completed, all buffers empty. *)
      if
        (not !progressed)
        && Array.for_all
             (fun (t : tstate) -> t.buf = [] && t.wait = 0)
             state.threads
        && Array.for_all2
             (fun (t : tstate) prog -> t.pc >= Array.length prog)
             state.threads programs
      then begin
        let o =
          {
            regs = Array.map (fun t -> Array.copy t.regs_v) state.threads;
            mem = Array.copy state.mem_v;
          }
        in
        Hashtbl.replace outcomes o ()
      end
    end
  in
  explore init;
  let all = Hashtbl.fold (fun o () acc -> o :: acc) outcomes [] in
  List.sort compare all

let exists outcomes p = List.exists p outcomes

let for_all outcomes p = List.for_all p outcomes

let pp_outcome fmt o =
  Format.fprintf fmt "regs=[";
  Array.iteri
    (fun i rs ->
      if i > 0 then Format.fprintf fmt "; ";
      Format.fprintf fmt "t%d:(%s)" i
        (String.concat "," (Array.to_list (Array.map string_of_int rs))))
    o.regs;
  Format.fprintf fmt "] mem=(%s)"
    (String.concat "," (Array.to_list (Array.map string_of_int o.mem)))

let pp_stats fmt s =
  Format.fprintf fmt
    "%d states, %d dedup, %d interned, %d zoned, frontier %d, %d leaps, %d \
     sleeps (dd %d, di %d, ii %d), %d races, %d wut, %d src-hits, %d steals, \
     %.3fs"
    s.visited s.dedup_hits s.canon_hits s.zones_merged s.max_frontier
    s.time_leaps s.sleep_skips s.dd_skips s.di_skips s.ii_skips
    s.races_detected s.wut_nodes s.source_set_hits s.frontier_steals s.elapsed

let states_per_sec s =
  if s.elapsed > 0.0 then float_of_int s.visited /. s.elapsed else 0.0

let stats_json s =
  let open Tbtso_obs in
  Json.obj
    [
      ("visited", Json.Int s.visited);
      ("dedup_hits", Json.Int s.dedup_hits);
      ("canon_hits", Json.Int s.canon_hits);
      ("zones_merged", Json.Int s.zones_merged);
      ("max_frontier", Json.Int s.max_frontier);
      ("time_leaps", Json.Int s.time_leaps);
      ("sleep_skips", Json.Int s.sleep_skips);
      ("dd_skips", Json.Int s.dd_skips);
      ("di_skips", Json.Int s.di_skips);
      ("ii_skips", Json.Int s.ii_skips);
      ("races_detected", Json.Int s.races_detected);
      ("wut_nodes", Json.Int s.wut_nodes);
      ("source_set_hits", Json.Int s.source_set_hits);
      ("frontier_steals", Json.Int s.frontier_steals);
      ("elapsed_s", Json.Float s.elapsed);
      ("states_per_sec", Json.Float (states_per_sec s));
    ]

let record_stats registry s =
  let open Tbtso_obs in
  Metrics.add (Metrics.counter registry "litmus.states_visited") s.visited;
  Metrics.add (Metrics.counter registry "litmus.dedup_hits") s.dedup_hits;
  Metrics.add (Metrics.counter registry "litmus.canon_hits") s.canon_hits;
  Metrics.add (Metrics.counter registry "litmus.zones_merged") s.zones_merged;
  Metrics.add (Metrics.counter registry "litmus.time_leaps") s.time_leaps;
  Metrics.add (Metrics.counter registry "litmus.sleep_skips") s.sleep_skips;
  Metrics.add (Metrics.counter registry "litmus.sleep_skips_dd") s.dd_skips;
  Metrics.add (Metrics.counter registry "litmus.sleep_skips_di") s.di_skips;
  Metrics.add (Metrics.counter registry "litmus.sleep_skips_ii") s.ii_skips;
  Metrics.add (Metrics.counter registry "litmus.races_detected") s.races_detected;
  Metrics.add (Metrics.counter registry "litmus.wut_nodes") s.wut_nodes;
  Metrics.add
    (Metrics.counter registry "litmus.source_set_hits")
    s.source_set_hits;
  Metrics.add
    (Metrics.counter registry "litmus.frontier_steals")
    s.frontier_steals;
  Metrics.add (Metrics.counter registry "litmus.explorations") 1;
  Metrics.set_max (Metrics.gauge registry "litmus.max_frontier")
    (float_of_int s.max_frontier);
  Metrics.set_max (Metrics.gauge registry "litmus.peak_states_per_sec")
    (states_per_sec s);
  let elapsed = Metrics.gauge registry "litmus.elapsed_s" in
  Metrics.set elapsed (Metrics.gauge_value elapsed +. s.elapsed)

module For_tests = struct
  type debug = { interned : int; arena_growths : int; arena_words : int }

  let explore_instrumented ~mode ?(addrs = 4) ?(regs = 4)
      ?(max_states = default_max_states) ?(dpor = false) ?arena_words
      ?table_slots ?on_intern programs =
    let r, (interned, arena_growths, arena_words, _) =
      enumerate_core ~mode ~addrs ~regs ~max_states ~profiler:Span.disabled
        ~dpor ?arena_words ?table_slots ?on_intern programs
    in
    (r, { interned; arena_growths; arena_words })

  module Wut = Wut
end
