type mode = M_sc | M_tso | M_tbtso of int | M_tsos of int

type instr =
  | Store of int * int
  | Load of int * int
  | Loadeq of int * int * int
  | Fence
  | Wait of int
  | Cas of int * int * int * int

type outcome = { regs : int array array; mem : int array }

(* Store-buffer entries carry remaining slack (ticks until the Δ deadline)
   instead of absolute times, so that states are clock-translation
   invariant and deduplicate well. [max_int] encodes "no deadline". *)
type entry = { addr : int; value : int; slack : int }

type tstate = {
  pc : int;
  regs_v : int array;
  wait : int;  (* remaining blocked ticks; 0 = runnable *)
  buf : entry list;  (* oldest first *)
}

type state = { mem_v : int array; threads : tstate array }

type stats = {
  visited : int;
  dedup_hits : int;
  canon_hits : int;
  zones_merged : int;
  max_frontier : int;
  time_leaps : int;
  sleep_skips : int;
  dd_skips : int;
  di_skips : int;
  ii_skips : int;
  elapsed : float;
}

type result = { outcomes : outcome list; complete : bool; stats : stats }

let forward buf addr =
  (* Newest matching entry wins; [buf] is oldest-first. *)
  List.fold_left (fun acc e -> if e.addr = addr then Some e.value else acc) None buf

(* [k] ticks pass: decrement waits and slacks. Returns None if some
   buffered store can no longer meet its deadline (pruned execution).
   [age_by 1] is exactly the reference semantics' per-action aging; a
   single [age_by k] is observationally equal to [k] single steps. *)
let age_by k state =
  let ok = ref true in
  let threads =
    Array.map
      (fun t ->
        let buf =
          List.map
            (fun e ->
              if e.slack = max_int then e
              else if e.slack < k then begin
                ok := false;
                e
              end
              else { e with slack = e.slack - k })
            t.buf
        in
        { t with wait = (if t.wait > k then t.wait - k else 0); buf })
      state.threads
  in
  if !ok then Some { state with threads } else None

let age state = age_by 1 state

let default_max_states = 2_000_000

module Span = Tbtso_obs.Span

(* Mutable scratch representation of one exploration state, allocated
   once per exploration and reused for every state: the expand loop
   decodes the parent into one of these, ages and mutates children in
   place, and re-encodes into the packed key buffer — zero per-state
   allocation. Thread [i]'s buffer slots live at words
   [3·boff(i) .. 3·boff(i+1)) of [s_buf] as (addr, value, slack)
   triples, where [boff] accumulates each thread's static store count
   (an upper bound on its buffer length: programs are straight-line,
   every store issues at most once). Words past [s_len.(i)] entries are
   stale and never read. *)
type scratch_state = {
  s_mem : int array;
  s_pc : int array;
  s_wait : int array;
  s_len : int array;
  s_regs : int array;  (* thread i's register r at [i * regs + r] *)
  s_buf : int array;
}

let enumerate_core ~mode ~addrs ~regs ~max_states ~profiler ?(arena_words = 1 lsl 16)
    ?(table_slots = 4096) ?on_intern programs0 =
  let t0 = Sys.time () in
  (* Phase accumulators (no-ops on the disabled profiler). [expand] is
     inclusive: it contains the canon / intern / sleep sections of the
     children it pushes. *)
  let ph_expand = Span.phase profiler "explore.expand" in
  let ph_canon = Span.phase profiler "explore.canon" in
  let ph_intern = Span.phase profiler "explore.intern" in
  let ph_sleep = Span.phase profiler "explore.sleep" in
  let programs = Array.of_list (List.map Array.of_list programs0) in
  let n = Array.length programs in
  let slack_of_store =
    match mode with M_tbtso d -> d | M_sc | M_tso | M_tsos _ -> max_int
  in
  let buffer_capacity =
    match mode with M_tsos s -> s | M_sc | M_tso | M_tbtso _ -> max_int
  in
  (* [suffix.(i).(pc)]: upper bound on the aging steps thread [i] can
     still cause from [pc] — one per instruction, plus one per future
     store (its drain), plus the full duration of every future wait
     (each tick of idling must be covered by some active wait). *)
  let suffix =
    Array.map
      (fun prog ->
        let len = Array.length prog in
        let s = Array.make (len + 1) 0 in
        for pc = len - 1 downto 0 do
          s.(pc) <-
            s.(pc + 1)
            + (match prog.(pc) with
              | Store _ -> 2
              | Wait d -> 1 + d
              | Load _ | Loadeq _ | Fence | Cas _ -> 1)
        done;
        s)
      programs
  in
  (* [actions.(i).(pc)]: real actions (instructions + drains of future
     stores) thread [i] can still perform from [pc] — like [suffix] but
     without wait durations. *)
  let actions =
    Array.map
      (fun prog ->
        let len = Array.length prog in
        let s = Array.make (len + 1) 0 in
        for pc = len - 1 downto 0 do
          s.(pc) <-
            s.(pc + 1)
            + (match prog.(pc) with
              | Store _ -> 2
              | Load _ | Loadeq _ | Fence | Cas _ | Wait _ -> 1)
        done;
        s)
      programs
  in
  (* [wsum.(i).(pc)]: total duration of the waits thread [i] has not yet
     started from [pc] — the only absolute idle padding a schedule can
     draw on beyond the wake timers already live in the state. *)
  let wsum =
    Array.init n (fun i ->
        Array.mapi (fun pc s -> s - actions.(i).(pc)) suffix.(i))
  in
  (* [sfut.(i).(pc)]: stores thread [i] has not yet issued from [pc] —
     each can open one more ≤ Δ drain window in an upper-bound chain. *)
  let sfut =
    Array.map
      (fun prog ->
        let len = Array.length prog in
        let s = Array.make (len + 1) 0 in
        for pc = len - 1 downto 0 do
          s.(pc) <-
            (s.(pc + 1)
            + match prog.(pc) with
              | Store _ -> 1
              | Load _ | Loadeq _ | Fence | Cas _ | Wait _ -> 0)
        done;
        s)
      programs
  in
  let clamp_pc i pc =
    let len = Array.length programs.(i) in
    if pc > len then len else pc
  in
  let outcomes = Hashtbl.create 64 in
  let visited = ref 0 in
  let dedup_hits = ref 0 in
  let canon_hits = ref 0 in
  let zones_merged = ref 0 in
  let max_frontier = ref 0 in
  let frontier = ref 0 in
  let time_leaps = ref 0 in
  let sleep_skips = ref 0 in
  let dd_skips = ref 0 in
  let di_skips = ref 0 in
  let ii_skips = ref 0 in
  let exhausted = ref false in
  (* --- Packed scratch states --- *)
  let bufcap =
    Array.map
      (fun prog ->
        Array.fold_left
          (fun acc ins ->
            match ins with
            | Store _ -> acc + 1
            | Load _ | Loadeq _ | Fence | Wait _ | Cas _ -> acc)
          0 prog)
      programs
  in
  let boff = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    boff.(i + 1) <- boff.(i) + bufcap.(i)
  done;
  let total_cap = boff.(n) in
  (* Packed key layout (the FNV-1a-hashed intern key): memory cells,
     then per thread: pc, wait, buffer length, registers, then one
     (addr, value, slack) triple per live buffer entry. At most
     [key_max] words; written into the single scratch buffer [kbuf]. *)
  let key_max = addrs + (n * (3 + regs)) + (3 * total_cap) in
  let make_ws () =
    {
      s_mem = Array.make addrs 0;
      s_pc = Array.make n 0;
      s_wait = Array.make n 0;
      s_len = Array.make n 0;
      s_regs = Array.make (n * regs) 0;
      s_buf = Array.make (3 * total_cap) 0;
    }
  in
  let copy_ws dst src =
    Array.blit src.s_mem 0 dst.s_mem 0 addrs;
    Array.blit src.s_pc 0 dst.s_pc 0 n;
    Array.blit src.s_wait 0 dst.s_wait 0 n;
    Array.blit src.s_len 0 dst.s_len 0 n;
    Array.blit src.s_regs 0 dst.s_regs 0 (n * regs);
    Array.blit src.s_buf 0 dst.s_buf 0 (3 * total_cap)
  in
  (* [a_ws]: the parent being expanded; [b_ws]: the parent aged by one
     tick, shared by every action branch; [c_ws]: the child under
     construction (copied from [b_ws], mutated, canonicalized in place,
     encoded, interned). *)
  let a_ws = make_ws () in
  let b_ws = make_ws () in
  let c_ws = make_ws () in
  let b_ok = ref false in
  let kbuf = Array.make (max key_max 1) 0 in
  let encode_ws c =
    let p = ref 0 in
    for a = 0 to addrs - 1 do
      Array.unsafe_set kbuf !p (Array.unsafe_get c.s_mem a);
      incr p
    done;
    for i = 0 to n - 1 do
      Array.unsafe_set kbuf !p c.s_pc.(i);
      incr p;
      Array.unsafe_set kbuf !p c.s_wait.(i);
      incr p;
      let l = c.s_len.(i) in
      Array.unsafe_set kbuf !p l;
      incr p;
      let rb = i * regs in
      for r = 0 to regs - 1 do
        Array.unsafe_set kbuf !p (Array.unsafe_get c.s_regs (rb + r));
        incr p
      done;
      let b = 3 * boff.(i) in
      for j = 0 to (3 * l) - 1 do
        Array.unsafe_set kbuf !p (Array.unsafe_get c.s_buf (b + j));
        incr p
      done
    done;
    !p
  in
  let fnv len =
    let h = ref 0x811c9dc5 in
    for i = 0 to len - 1 do
      h := (!h lxor Array.unsafe_get kbuf i) * 0x01000193 land max_int
    done;
    !h
  in
  (* --- Hash-cons arena ---

     Canonical states are interned at push time into a dense id space:
     the packed key words live back to back in the growable [arena],
     the open-addressed [table] (power-of-two capacity, linear probing,
     slots hold id + 1 with 0 = empty, ≤ 0.5 load) maps key to id via
     the cached FNV hash, and [sleeps.(id)]/[slclss.(id)] hold the
     sleep set the state was (last) expanded with (-1 = not yet
     expanded). The worklist carries plain ids, the hot dedup path
     compares ids instead of re-hashing keys, re-arrivals at an
     interned state count as [canon_hits], and the intern hit path
     allocates nothing. *)
  let round_pow2 x =
    let c = ref 16 in
    while !c < x do
      c := 2 * !c
    done;
    !c
  in
  let arena = ref (Array.make (max arena_words 16) 0) in
  let arena_used = ref 0 in
  let arena_growths = ref 0 in
  let table = ref (Array.make (round_pow2 table_slots) 0) in
  let key_off = ref (Array.make 1024 0) in
  let key_len = ref (Array.make 1024 0) in
  let key_hash = ref (Array.make 1024 0) in
  let sleeps = ref (Array.make 1024 (-1)) in
  let slclss = ref (Array.make 1024 0) in
  let nstates = ref 0 in
  let rehash () =
    let cap = 2 * Array.length !table in
    let t = Array.make cap 0 in
    let mask = cap - 1 in
    let kh = !key_hash in
    for id = 0 to !nstates - 1 do
      let slot = ref (kh.(id) land mask) in
      while t.(!slot) <> 0 do
        slot := (!slot + 1) land mask
      done;
      t.(!slot) <- id + 1
    done;
    table := t
  in
  (* Intern the packed key in [kbuf.(0..klen-1)]: the id of the state,
     existing or fresh. *)
  let intern_packed klen h =
    let tbl = !table in
    let mask = Array.length tbl - 1 in
    let ar = !arena in
    let ko = !key_off and kl = !key_len and kh = !key_hash in
    let slot = ref (h land mask) in
    let found = ref (-1) in
    let probing = ref true in
    while !probing do
      let v = Array.unsafe_get tbl !slot in
      if v = 0 then probing := false
      else begin
        let cand = v - 1 in
        if Array.unsafe_get kh cand = h && Array.unsafe_get kl cand = klen
        then begin
          let off = Array.unsafe_get ko cand in
          let i = ref 0 in
          while
            !i < klen
            && Array.unsafe_get ar (off + !i) = Array.unsafe_get kbuf !i
          do
            incr i
          done;
          if !i = klen then begin
            found := cand;
            probing := false
          end
          else slot := (!slot + 1) land mask
        end
        else slot := (!slot + 1) land mask
      end
    done;
    if !found >= 0 then begin
      incr canon_hits;
      !found
    end
    else begin
      let id = !nstates in
      let idcap = Array.length !key_off in
      if id >= idcap then begin
        let grow a fill =
          let a' = Array.make (2 * idcap) fill in
          Array.blit !a 0 a' 0 idcap;
          a := a'
        in
        grow key_off 0;
        grow key_len 0;
        grow key_hash 0;
        grow sleeps (-1);
        grow slclss 0
      end;
      (if !arena_used + klen > Array.length !arena then begin
         let newcap = ref (2 * Array.length !arena) in
         while !arena_used + klen > !newcap do
           newcap := 2 * !newcap
         done;
         let a' = Array.make !newcap 0 in
         Array.blit !arena 0 a' 0 !arena_used;
         arena := a';
         incr arena_growths
       end);
      let off = !arena_used in
      Array.blit kbuf 0 !arena off klen;
      arena_used := off + klen;
      !key_off.(id) <- off;
      !key_len.(id) <- klen;
      !key_hash.(id) <- h;
      !sleeps.(id) <- -1;
      !slclss.(id) <- 0;
      !table.(!slot) <- id + 1;
      incr nstates;
      if 2 * !nstates >= Array.length !table then rehash ();
      id
    end
  in
  let intern c =
    Span.start ph_intern;
    let klen = encode_ws c in
    let id = intern_packed klen (fnv klen) in
    Span.stop ph_intern;
    Span.items ph_intern 1;
    (match on_intern with
    | None -> ()
    | Some f -> f (Array.sub kbuf 0 klen) id);
    id
  in
  let decode_ws off dst =
    let ar = !arena in
    let p = ref off in
    for a = 0 to addrs - 1 do
      dst.s_mem.(a) <- Array.unsafe_get ar !p;
      incr p
    done;
    for i = 0 to n - 1 do
      dst.s_pc.(i) <- Array.unsafe_get ar !p;
      incr p;
      dst.s_wait.(i) <- Array.unsafe_get ar !p;
      incr p;
      let l = Array.unsafe_get ar !p in
      incr p;
      dst.s_len.(i) <- l;
      let rb = i * regs in
      for r = 0 to regs - 1 do
        dst.s_regs.(rb + r) <- Array.unsafe_get ar !p;
        incr p
      done;
      let b = 3 * boff.(i) in
      for j = 0 to (3 * l) - 1 do
        dst.s_buf.(b + j) <- Array.unsafe_get ar !p;
        incr p
      done
    done
  in
  (* Upper bound on the number of aging steps any continuation of the
     state can take before the whole program terminates (or dead-ends). *)
  let horizon_ws c =
    let h = ref 0 in
    for i = 0 to n - 1 do
      h := !h + c.s_wait.(i) + c.s_len.(i) + suffix.(i).(clamp_pc i c.s_pc.(i))
    done;
    !h
  in
  (* Observability caps for the zone abstraction (see [Zone] for the
     full argument). A feasibility threshold compares either a pairwise
     timer difference against at most [Δ·S_fut + W_fut + R_live + 1] —
     upper-bound chains anchor at live timers (relational) and can
     extend by one ≤ Δ window per not-yet-issued store plus the
     coverage of not-yet-started waits — or the smallest timer against
     a lower-bound total of at most [W_fut + R_live + 1], with no Δ
     term at all. Under SC/TSO/TSO[S] there are no deadlines, hence no
     upper-bound anchors, and only order and ties are observable: both
     caps shrink to [2 + R_live]. The base cap's Δ-freedom is what
     makes the flag protocol's wait-vs-Δ race flat in Δ, and the
     [Δ·S_fut] gap term vanishes once the racing stores are issued.
     (The previous per-counter cap was [R + Δ·nwin] with [nwin ≥ 1] in
     {e every} TBTSO state, which kept the wake concrete through the
     whole wait — the linear-in-Δ blow-up this replaces.) *)
  let max_slack = match mode with M_tbtso d -> d | M_sc | M_tso | M_tsos _ -> 0 in
  let cap_base = ref 0 in
  let cap_gap = ref 0 in
  let zone_caps_ws c =
    let r = ref 0 and w = ref 0 and s = ref 0 in
    for i = 0 to n - 1 do
      let pc = clamp_pc i c.s_pc.(i) in
      r := !r + c.s_len.(i) + actions.(i).(pc);
      w := !w + wsum.(i).(pc);
      s := !s + sfut.(i).(pc)
    done;
    match mode with
    | M_sc | M_tso | M_tsos _ ->
        cap_base := 2 + !r;
        cap_gap := 2 + !r
    | M_tbtso _ ->
        let dwin =
          (* Saturate instead of overflowing for absurd Δ: a cap this
             large never clamps anything, which is trivially exact. *)
          if !s > 0 && max_slack >= max_int / (4 * (!s + 1)) then max_int / 4
          else max_slack * !s
        in
        cap_base := 2 + !r + !w;
        cap_gap := 2 + !r + !w + dwin
  in
  (* Time-leap aging, part 2: map the state's live timers (wake timers
     from waits, deadline timers from slacks) to their canonical zone
     representative — ∞-saturate deadlines beyond the horizon, then
     base/gap-clamp the rest at [zone_cap]. Iterated to a fixpoint:
     clamping waits shrinks the horizon, which can unlock further
     saturation. Each pass is outcome-preserving for the concrete state
     it is applied to, so the iteration order never affects
     correctness, only how small the canonical form gets.

     Runs entirely in place on the scratch child: timers are gathered
     into the preallocated [z_kinds]/[z_vals] vectors, normalized by
     {!Zone.normalize_into} with the reusable [z_scratch], and written
     back — no allocation on any path. *)
  let max_timers = n + total_cap in
  let z_kinds = Array.make (max max_timers 1) Zone.Wake in
  let z_vals = Array.make (max max_timers 1) 0 in
  let z_scratch = Array.make (max (2 * max_timers) 1) 0 in
  let canon_ws c =
    Span.start ph_canon;
    let rewrote = ref false in
    let fixing = ref true in
    while !fixing do
      let nt = ref 0 in
      for i = 0 to n - 1 do
        if c.s_wait.(i) > 0 then begin
          z_kinds.(!nt) <- Zone.Wake;
          z_vals.(!nt) <- c.s_wait.(i);
          incr nt
        end;
        let b = 3 * boff.(i) in
        for j = 0 to c.s_len.(i) - 1 do
          z_kinds.(!nt) <- Zone.Deadline;
          z_vals.(!nt) <- c.s_buf.(b + (3 * j) + 2);
          incr nt
        done
      done;
      if !nt = 0 then fixing := false
      else begin
        zone_caps_ws c;
        let changed =
          Zone.normalize_into ~horizon:(horizon_ws c) ~base_cap:!cap_base
            ~gap_cap:!cap_gap z_kinds z_vals ~len:!nt ~scratch:z_scratch
        in
        if changed then begin
          rewrote := true;
          let j = ref 0 in
          for i = 0 to n - 1 do
            if c.s_wait.(i) > 0 then begin
              c.s_wait.(i) <- z_vals.(!j);
              incr j
            end;
            let b = 3 * boff.(i) in
            for k = 0 to c.s_len.(i) - 1 do
              c.s_buf.(b + (3 * k) + 2) <- z_vals.(!j);
              incr j
            done
          done
        end
        else fixing := false
      end
    done;
    if !rewrote then incr zones_merged;
    Span.stop ph_canon;
    Span.items ph_canon 1
  in
  (* In-place [age_by k] on a scratch state: false when some buffered
     store can no longer meet its deadline (the caller then discards
     the clobbered scratch — exactly the reference semantics' pruned
     dead end). *)
  let age_ws c k =
    let ok = ref true in
    for i = 0 to n - 1 do
      c.s_wait.(i) <- (if c.s_wait.(i) > k then c.s_wait.(i) - k else 0);
      let b = 3 * boff.(i) in
      for j = 0 to c.s_len.(i) - 1 do
        let idx = b + (3 * j) + 2 in
        let s = c.s_buf.(idx) in
        if s <> max_int then
          if s < k then ok := false else c.s_buf.(idx) <- s - k
      done
    done;
    !ok
  in
  (* Worklist items: an interned state id plus a sleep set — a bitmask
     over the 2n actions (bit [i] = drain by thread [i], bit [n + i] =
     thread [i]'s next instruction) that need not be explored from here
     because an equivalent (commuted) interleaving was already
     explored — and a class mask (2 bits per action: 0 = drain/drain,
     1 = drain/instr, 2 = instr/instr) recording which independence
     rule justified each slept action, for the per-class skip stats.
     Stored as three parallel int stacks (same LIFO order as the old
     list-of-tuples worklist, no per-push allocation). *)
  let wl_id = ref (Array.make 1024 0) in
  let wl_sleep = ref (Array.make 1024 0) in
  let wl_cls = ref (Array.make 1024 0) in
  let wl_sp = ref 0 in
  let wl_push id sleep cls =
    let cap = Array.length !wl_id in
    if !wl_sp >= cap then begin
      let grow a =
        let a' = Array.make (2 * cap) 0 in
        Array.blit !a 0 a' 0 cap;
        a := a'
      in
      grow wl_id;
      grow wl_sleep;
      grow wl_cls
    end;
    !wl_id.(!wl_sp) <- id;
    !wl_sleep.(!wl_sp) <- sleep;
    !wl_cls.(!wl_sp) <- cls;
    incr wl_sp;
    incr frontier;
    if !frontier > !max_frontier then max_frontier := !frontier
  in
  (* Canonicalize the scratch child, intern it, push its id. *)
  let push_child sl cls =
    canon_ws c_ws;
    wl_push (intern c_ws) sl cls
  in
  (* Initial state: fresh scratch is all zeros already. *)
  push_child 0 0;
  let drain_mask = (1 lsl n) - 1 in
  (* Counter-creating instructions start a fresh timer whose value would
     differ by one aging step across the two orders of any commuted
     pair (Wait d sets wait = d {e after} the aging of its own tick;
     a TBTSO store buffers slack Δ likewise), so they commute
     on-the-nose with nothing: their children get an empty sleep set
     and they are never inserted into a sibling's sleep set. *)
  let cc_instr_ws i c =
    match programs.(i).(c.s_pc.(i)) with
    | Store _ -> ( match mode with M_tbtso _ -> true | M_sc | M_tso | M_tsos _ -> false)
    | Wait d -> d > 0
    | Load _ | Loadeq _ | Fence | Cas _ -> false
  in
  (* Buffer forwarding on a scratch state: newest matching entry wins.
     On a hit the forwarded value is left in [fwd_hit]. *)
  let fwd_hit = ref 0 in
  let forwarded_ws c i a =
    let b = 3 * boff.(i) in
    let j = ref (c.s_len.(i) - 1) in
    let hit = ref false in
    while (not !hit) && !j >= 0 do
      if c.s_buf.(b + (3 * !j)) = a then begin
        hit := true;
        fwd_hit := c.s_buf.(b + (3 * !j) + 1)
      end
      else decr j
    done;
    !hit
  in
  (* Memory footprints as fixed-width bitsets: bit [a] of the read and
     write masks (addresses ≥ 61 share the top bit — conservative, so
     only ever {e fewer} sleeps; corpus addresses are single digits).
     An empty footprint is the zero mask and conflict checks are single
     [land]s. Refined by forwarding exactly as before: a load served
     from the thread's own buffer does not read memory, and a TSO/TSOS
     store only appends to the thread's own buffer (the memory write is
     the later drain action). Results in [fp_r]/[fp_w]. *)
  let addr_bit a = 1 lsl (if a < 61 then a else 61) in
  let fp_r = ref 0 in
  let fp_w = ref 0 in
  let footprint_ws i c =
    match programs.(i).(c.s_pc.(i)) with
    | Store (a, _) ->
        fp_r := 0;
        fp_w := (if mode = M_sc then addr_bit a else 0)
    | Load (a, _) | Loadeq (a, _, _) ->
        fp_w := 0;
        fp_r := (if forwarded_ws c i a then 0 else addr_bit a)
    | Fence | Wait _ ->
        fp_r := 0;
        fp_w := 0
    | Cas (a, _, _, _) ->
        let m = addr_bit a in
        fp_r := m;
        fp_w := m
  in
  let instr_enabled_ws i c =
    c.s_wait.(i) = 0
    && c.s_pc.(i) < Array.length programs.(i)
    && (match programs.(i).(c.s_pc.(i)) with
       | Store _ -> c.s_len.(i) < buffer_capacity
       | Fence | Cas _ -> c.s_len.(i) = 0
       | Load _ | Loadeq _ | Wait _ -> true)
  in
  let cls_dd = 0 and cls_di = 1 and cls_ii = 2 in
  (* Sleep set for the child of the current action: every
     already-explored (or inherited-slept) sibling action that provably
     commutes with it on the nose, including feasibility of the
     reversed order. [drain] says whether the current action is a drain
     by thread [i]; for a drain, [addr_mask] is the committed address's
     bit and [guard] is [slack ≥ 2] at the parent — the reversed order
     drains this entry one aging step later, so skipping the
     explored-first order is only sound when the entry survives that
     extra step. For an instruction, the footprint masks must already
     be in [fp_r]/[fp_w]; a prior drain needs no slack guard (the
     reversed order drains {e earlier}). Results in
     [sl_out]/[cls_out]. *)
  let sl_out = ref 0 in
  let cls_out = ref 0 in
  let child_sleep_core c explored ~acting:i ~drain ~addr_mask ~guard =
    let ri = if drain then 0 else !fp_r in
    let wi = if drain then 0 else !fp_w in
    sl_out := 0;
    cls_out := 0;
    let keep bit cl =
      sl_out := !sl_out lor (1 lsl bit);
      cls_out := !cls_out lor (cl lsl (2 * bit))
    in
    for m = 0 to n - 1 do
      if m <> i then begin
        (if explored land (1 lsl m) <> 0 && c.s_len.(m) > 0 then begin
           let em_mask = addr_bit c.s_buf.(3 * boff.(m)) in
           if drain then begin
             if guard && em_mask land addr_mask = 0 then keep m cls_dd
           end
           else if ri land em_mask = 0 && wi land em_mask = 0 then
             keep m cls_di
         end);
        if explored land (1 lsl (n + m)) <> 0 then
          if instr_enabled_ws m c && not (cc_instr_ws m c) then begin
            footprint_ws m c;
            let rm = !fp_r and wm = !fp_w in
            if drain then begin
              if guard && rm land addr_mask = 0 && wm land addr_mask = 0 then
                keep (n + m) cls_di
            end
            else if wi land rm = 0 && wi land wm = 0 && wm land ri = 0 then
              keep (n + m) cls_ii
          end
      end
    done
  in
  let child_sleep c explored ~acting ~drain ~addr_mask ~guard =
    Span.start ph_sleep;
    child_sleep_core c explored ~acting ~drain ~addr_mask ~guard;
    Span.stop ph_sleep;
    Span.items ph_sleep 1
  in
  let count_skip slcls bit =
    incr sleep_skips;
    match (slcls lsr (2 * bit)) land 3 with
    | 0 -> incr dd_skips
    | 1 -> incr di_skips
    | _ -> incr ii_skips
  in
  (* Expand the parent in [a_ws]. Children are built by blitting the
     shared aged copy [b_ws] into [c_ws], mutating [c_ws] in place and
     pushing it — each action branch fully consumes [c_ws] before the
     next begins. *)
  let expand_ws sleep slcls =
    (* Terminal state: all threads completed, all buffers empty. *)
    let terminal = ref true in
    for i = 0 to n - 1 do
      if
        a_ws.s_len.(i) > 0
        || a_ws.s_wait.(i) > 0
        || a_ws.s_pc.(i) < Array.length programs.(i)
      then terminal := false
    done;
    if !terminal then
      let o =
        {
          regs = Array.init n (fun i -> Array.sub a_ws.s_regs (i * regs) regs);
          mem = Array.copy a_ws.s_mem;
        }
      in
      Hashtbl.replace outcomes o ()
    else begin
      (* Aging is identical for every action branch from this state, so
         compute it once into [b_ws]. [false] means some deadline
         already expired: no action (and no idle) is possible — a
         pruned dead end. *)
      copy_ws b_ws a_ws;
      b_ok := age_ws b_ws 1;
      (* Drain actions, in thread order, with the sleep-set reduction:
         after exploring an action we add it to [explored]; later
         siblings' children inherit every explored action that provably
         commutes with theirs (see [child_sleep]) and never explore the
         reversed order of an independent pair. Inherited slept actions
         count as explored for this purpose. *)
      let explored = ref sleep in
      for i = 0 to n - 1 do
        if a_ws.s_len.(i) > 0 then begin
          if sleep land (1 lsl i) <> 0 then count_skip slcls i
          else begin
            (if !b_ok then begin
               let eb = 3 * boff.(i) in
               let e_addr = a_ws.s_buf.(eb) in
               let e_slack = a_ws.s_buf.(eb + 2) in
               copy_ws c_ws b_ws;
               (* Commit thread [i]'s oldest entry (addr/value survive
                  aging) and shift the rest down one slot. *)
               c_ws.s_mem.(e_addr) <- c_ws.s_buf.(eb + 1);
               let l = c_ws.s_len.(i) in
               Array.blit c_ws.s_buf (eb + 3) c_ws.s_buf eb (3 * (l - 1));
               c_ws.s_len.(i) <- l - 1;
               child_sleep a_ws !explored ~acting:i ~drain:true
                 ~addr_mask:(addr_bit e_addr) ~guard:(e_slack >= 2);
               push_child !sl_out !cls_out
             end);
            explored := !explored lor (1 lsl i)
          end
        end
      done;
      (* Instruction actions. *)
      for i = 0 to n - 1 do
        if instr_enabled_ws i a_ws then begin
          if sleep land (1 lsl (n + i)) <> 0 then count_skip slcls (n + i)
          else begin
            let cc = cc_instr_ws i a_ws in
            let sl, cls =
              if cc then (0, 0)
              else begin
                footprint_ws i a_ws;
                child_sleep a_ws !explored ~acting:i ~drain:false ~addr_mask:0
                  ~guard:false;
                (!sl_out, !cls_out)
              end
            in
            (if !b_ok then begin
               copy_ws c_ws b_ws;
               let pc = c_ws.s_pc.(i) in
               (match programs.(i).(pc) with
               | Store (a, v) ->
                   if mode = M_sc then begin
                     c_ws.s_mem.(a) <- v;
                     c_ws.s_pc.(i) <- pc + 1
                   end
                   else begin
                     let l = c_ws.s_len.(i) in
                     let eb = 3 * (boff.(i) + l) in
                     c_ws.s_buf.(eb) <- a;
                     c_ws.s_buf.(eb + 1) <- v;
                     c_ws.s_buf.(eb + 2) <- slack_of_store;
                     c_ws.s_len.(i) <- l + 1;
                     c_ws.s_pc.(i) <- pc + 1
                   end
               | Load (a, r) ->
                   let v =
                     if forwarded_ws c_ws i a then !fwd_hit else c_ws.s_mem.(a)
                   in
                   c_ws.s_regs.((i * regs) + r) <- v;
                   c_ws.s_pc.(i) <- pc + 1
               | Loadeq (a, v0, skip) ->
                   let v =
                     if forwarded_ws c_ws i a then !fwd_hit else c_ws.s_mem.(a)
                   in
                   c_ws.s_pc.(i) <- (if v = v0 then pc + 1 + skip else pc + 1)
               | Fence -> c_ws.s_pc.(i) <- pc + 1
               | Cas (a, expected, desired, r) ->
                   (* x86 locked RMW: requires an empty store buffer (it
                      is drained first) and acts directly on memory. *)
                   let cur = c_ws.s_mem.(a) in
                   if cur = expected then begin
                     c_ws.s_mem.(a) <- desired;
                     c_ws.s_regs.((i * regs) + r) <- 1
                   end
                   else c_ws.s_regs.((i * regs) + r) <- 0;
                   c_ws.s_pc.(i) <- pc + 1
               | Wait d ->
                   c_ws.s_pc.(i) <- pc + 1;
                   c_ws.s_wait.(i) <- d);
               push_child sl cls
             end);
            if not cc then explored := !explored lor (1 lsl (n + i))
          end
        end
      done;
      (* Idle: time passes with nobody executing an instruction. Needed so
         that waiting threads can unblock; only enabled while someone
         waits, to keep the state space finite.

         Time-leap aging, part 1: when no thread can execute an
         instruction (every unfinished thread is mid-wait), the only
         actions besides idling are drains — and a drain after j idle
         ticks reaches exactly the state of draining now and idling j
         ticks.  So instead of idling one tick at a time through a quiet
         stretch we leap straight to the next wakeup, pruning the branch
         if a deadline would expire strictly inside the leap (exactly
         what tick-by-tick idling would conclude). *)
      let any_wait = ref false in
      for i = 0 to n - 1 do
        if a_ws.s_wait.(i) > 0 then any_wait := true
      done;
      if !any_wait then begin
        let can_instr = ref false in
        for i = 0 to n - 1 do
          if a_ws.s_wait.(i) = 0 && a_ws.s_pc.(i) < Array.length programs.(i)
          then can_instr := true
        done;
        let k =
          if !can_instr then 1
          else begin
            let m = ref max_int in
            for i = 0 to n - 1 do
              if a_ws.s_wait.(i) > 0 && a_ws.s_wait.(i) < !m then
                m := a_ws.s_wait.(i)
            done;
            !m
          end
        in
        copy_ws c_ws a_ws;
        if age_ws c_ws k then begin
          if k > 1 then incr time_leaps;
          (* Idling commutes with every drain (draining first is the
             weaker feasibility requirement), so the drain bits of
             the accumulated sleep set survive the idle step.
             Instruction bits do not: idling can expire a wait and
             change which instructions are enabled. *)
          push_child (!explored land drain_mask) 0
        end
      end
    end
  in
  let expand sleep slcls =
    Span.start ph_expand;
    expand_ws sleep slcls;
    Span.stop ph_expand;
    Span.items ph_expand 1
  in
  let looping = ref true in
  while !looping do
    if !wl_sp = 0 then looping := false
    else begin
      decr wl_sp;
      let id = !wl_id.(!wl_sp) in
      let sleep = !wl_sleep.(!wl_sp) in
      let slcls = !wl_cls.(!wl_sp) in
      decr frontier;
      let prev = !sleeps.(id) in
      if prev < 0 then
        if !visited >= max_states then begin
          (* Budget exhausted: report a typed partial result instead
             of failing from deep inside the exploration. *)
          exhausted := true;
          looping := false;
          wl_sp := 0
        end
        else begin
          incr visited;
          !sleeps.(id) <- sleep;
          !slclss.(id) <- slcls;
          decode_ws !key_off.(id) a_ws;
          expand sleep slcls
        end
      else if
        (* Already expanded. If the previous visit slept on a subset
           of our sleep set it explored everything we would;
           otherwise re-expand with the intersection (the standard
           sleep-set state-matching rule). *)
        prev land lnot sleep = 0
      then incr dedup_hits
      else begin
        let merged = prev land sleep in
        !sleeps.(id) <- merged;
        !slclss.(id) <- slcls;
        decode_ws !key_off.(id) a_ws;
        expand merged slcls
      end
    end
  done;
  let all = Hashtbl.fold (fun o () acc -> o :: acc) outcomes [] in
  let outcomes = List.sort compare all in
  ( {
      outcomes;
      complete = not !exhausted;
      stats =
        {
          visited = !visited;
          dedup_hits = !dedup_hits;
          canon_hits = !canon_hits;
          zones_merged = !zones_merged;
          max_frontier = !max_frontier;
          time_leaps = !time_leaps;
          sleep_skips = !sleep_skips;
          dd_skips = !dd_skips;
          di_skips = !di_skips;
          ii_skips = !ii_skips;
          elapsed = Sys.time () -. t0;
        };
    },
    (!nstates, !arena_growths, !arena_used) )

let explore ~mode ?(addrs = 4) ?(regs = 4) ?(max_states = default_max_states)
    ?(profiler = Span.disabled) programs =
  fst (enumerate_core ~mode ~addrs ~regs ~max_states ~profiler programs)

let enumerate ~mode ?(addrs = 4) ?(regs = 4) ?(max_states = default_max_states)
    programs =
  let r =
    fst
      (enumerate_core ~mode ~addrs ~regs ~max_states ~profiler:Span.disabled
         programs)
  in
  if not r.complete then
    failwith
      (Printf.sprintf "Litmus.enumerate: state space exceeds %d states" max_states);
  r.outcomes

(* --- Reference enumerator ---

   The original recursive, tick-by-tick, string-keyed implementation,
   kept verbatim as the differential-testing oracle: the optimized
   checker above must produce the identical outcome set on every
   program.  Do not "improve" this one. *)

let key_of_state s =
  let b = Buffer.create 64 in
  Array.iter
    (fun v ->
      Buffer.add_string b (string_of_int v);
      Buffer.add_char b ',')
    s.mem_v;
  Array.iter
    (fun t ->
      Buffer.add_char b '|';
      Buffer.add_string b (string_of_int t.pc);
      Buffer.add_char b ';';
      Buffer.add_string b (string_of_int t.wait);
      Buffer.add_char b ';';
      Array.iter
        (fun v ->
          Buffer.add_string b (string_of_int v);
          Buffer.add_char b ',')
        t.regs_v;
      List.iter
        (fun e ->
          Buffer.add_string b (string_of_int e.addr);
          Buffer.add_char b ':';
          Buffer.add_string b (string_of_int e.value);
          Buffer.add_char b ':';
          Buffer.add_string b (string_of_int e.slack);
          Buffer.add_char b ' ')
        t.buf)
    s.threads;
  Buffer.contents b

let enumerate_reference ~mode ?(addrs = 4) ?(regs = 4)
    ?(max_states = default_max_states) programs =
  let programs = Array.of_list (List.map Array.of_list programs) in
  let n = Array.length programs in
  let init =
    {
      mem_v = Array.make addrs 0;
      threads =
        Array.init n (fun _ ->
            { pc = 0; regs_v = Array.make regs 0; wait = 0; buf = [] });
    }
  in
  let seen = Hashtbl.create 4096 in
  let outcomes = Hashtbl.create 64 in
  let visited = ref 0 in
  let slack_of_store =
    match mode with M_tbtso d -> d | M_sc | M_tso | M_tsos _ -> max_int
  in
  let buffer_capacity =
    match mode with M_tsos s -> s | M_sc | M_tso | M_tbtso _ -> max_int
  in
  let rec explore state =
    let key = key_of_state state in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      incr visited;
      if !visited > max_states then
        failwith
          (Printf.sprintf "Litmus.enumerate: state space exceeds %d states"
             max_states);
      let progressed = ref false in
      let step f =
        (* Apply an action: first age the state by one tick, then mutate. *)
        match age state with
        | None -> ()
        | Some aged ->
            progressed := true;
            explore (f aged)
      in
      let with_thread st i t =
        let threads = Array.copy st.threads in
        threads.(i) <- t;
        { st with threads }
      in
      for i = 0 to n - 1 do
        let t = state.threads.(i) in
        (* Drain action: commit this thread's oldest buffered store. *)
        (match t.buf with
        | e :: rest ->
            step (fun st ->
                let t = st.threads.(i) in
                let e', rest' =
                  match t.buf with e' :: r -> (e', r) | [] -> assert false
                in
                ignore e';
                let mem_v = Array.copy st.mem_v in
                mem_v.(e.addr) <- e.value;
                ignore rest;
                { (with_thread st i { t with buf = rest' }) with mem_v })
        | [] -> ());
        (* Instruction action. *)
        if t.wait = 0 && t.pc < Array.length programs.(i) then begin
          match programs.(i).(t.pc) with
          | Store (a, v) ->
              (* Under TSO[S] a store is enabled only when the buffer has
                 room (spatial bound). *)
              if List.length t.buf < buffer_capacity then
                step (fun st ->
                    let t = st.threads.(i) in
                    if mode = M_sc then begin
                      let mem_v = Array.copy st.mem_v in
                      mem_v.(a) <- v;
                      { (with_thread st i { t with pc = t.pc + 1 }) with mem_v }
                    end
                    else
                      let buf =
                        t.buf @ [ { addr = a; value = v; slack = slack_of_store } ]
                      in
                      with_thread st i { t with pc = t.pc + 1; buf })
          | Load (a, r) ->
              step (fun st ->
                  let t = st.threads.(i) in
                  let v =
                    match forward t.buf a with Some v -> v | None -> st.mem_v.(a)
                  in
                  let regs_v = Array.copy t.regs_v in
                  regs_v.(r) <- v;
                  with_thread st i { t with pc = t.pc + 1; regs_v })
          | Loadeq (a, v0, skip) ->
              step (fun st ->
                  let t = st.threads.(i) in
                  let v =
                    match forward t.buf a with Some v -> v | None -> st.mem_v.(a)
                  in
                  let pc = if v = v0 then t.pc + 1 + skip else t.pc + 1 in
                  with_thread st i { t with pc })
          | Fence ->
              if t.buf = [] then
                step (fun st ->
                    let t = st.threads.(i) in
                    with_thread st i { t with pc = t.pc + 1 })
          | Cas (a, expected, desired, r) ->
              (* x86 locked RMW: requires an empty store buffer (it is
                 drained first) and acts directly on memory. *)
              if t.buf = [] then
                step (fun st ->
                    let t = st.threads.(i) in
                    let cur = st.mem_v.(a) in
                    let regs_v = Array.copy t.regs_v in
                    let mem_v = Array.copy st.mem_v in
                    if cur = expected then begin
                      mem_v.(a) <- desired;
                      regs_v.(r) <- 1
                    end
                    else regs_v.(r) <- 0;
                    { (with_thread st i { t with pc = t.pc + 1; regs_v }) with
                      mem_v
                    })
          | Wait d ->
              step (fun st ->
                  let t = st.threads.(i) in
                  with_thread st i { t with pc = t.pc + 1; wait = d })
        end
      done;
      (* Idle tick: time passes with nobody acting. Needed so that waiting
         threads can unblock when everyone else is done; harmless (and
         behaviour-enlarging) otherwise, but only enabled when someone is
         waiting, to keep the state space finite. *)
      if Array.exists (fun t -> t.wait > 0) state.threads then step (fun st -> st);
      (* Terminal state: all threads completed, all buffers empty. *)
      if
        (not !progressed)
        && Array.for_all
             (fun (t : tstate) -> t.buf = [] && t.wait = 0)
             state.threads
        && Array.for_all2
             (fun (t : tstate) prog -> t.pc >= Array.length prog)
             state.threads programs
      then begin
        let o =
          {
            regs = Array.map (fun t -> Array.copy t.regs_v) state.threads;
            mem = Array.copy state.mem_v;
          }
        in
        Hashtbl.replace outcomes o ()
      end
    end
  in
  explore init;
  let all = Hashtbl.fold (fun o () acc -> o :: acc) outcomes [] in
  List.sort compare all

let exists outcomes p = List.exists p outcomes

let for_all outcomes p = List.for_all p outcomes

let pp_outcome fmt o =
  Format.fprintf fmt "regs=[";
  Array.iteri
    (fun i rs ->
      if i > 0 then Format.fprintf fmt "; ";
      Format.fprintf fmt "t%d:(%s)" i
        (String.concat "," (Array.to_list (Array.map string_of_int rs))))
    o.regs;
  Format.fprintf fmt "] mem=(%s)"
    (String.concat "," (Array.to_list (Array.map string_of_int o.mem)))

let pp_stats fmt s =
  Format.fprintf fmt
    "%d states, %d dedup, %d interned, %d zoned, frontier %d, %d leaps, %d \
     sleeps (dd %d, di %d, ii %d), %.3fs"
    s.visited s.dedup_hits s.canon_hits s.zones_merged s.max_frontier
    s.time_leaps s.sleep_skips s.dd_skips s.di_skips s.ii_skips s.elapsed

let states_per_sec s =
  if s.elapsed > 0.0 then float_of_int s.visited /. s.elapsed else 0.0

let stats_json s =
  let open Tbtso_obs in
  Json.obj
    [
      ("visited", Json.Int s.visited);
      ("dedup_hits", Json.Int s.dedup_hits);
      ("canon_hits", Json.Int s.canon_hits);
      ("zones_merged", Json.Int s.zones_merged);
      ("max_frontier", Json.Int s.max_frontier);
      ("time_leaps", Json.Int s.time_leaps);
      ("sleep_skips", Json.Int s.sleep_skips);
      ("dd_skips", Json.Int s.dd_skips);
      ("di_skips", Json.Int s.di_skips);
      ("ii_skips", Json.Int s.ii_skips);
      ("elapsed_s", Json.Float s.elapsed);
      ("states_per_sec", Json.Float (states_per_sec s));
    ]

let record_stats registry s =
  let open Tbtso_obs in
  Metrics.add (Metrics.counter registry "litmus.states_visited") s.visited;
  Metrics.add (Metrics.counter registry "litmus.dedup_hits") s.dedup_hits;
  Metrics.add (Metrics.counter registry "litmus.canon_hits") s.canon_hits;
  Metrics.add (Metrics.counter registry "litmus.zones_merged") s.zones_merged;
  Metrics.add (Metrics.counter registry "litmus.time_leaps") s.time_leaps;
  Metrics.add (Metrics.counter registry "litmus.sleep_skips") s.sleep_skips;
  Metrics.add (Metrics.counter registry "litmus.sleep_skips_dd") s.dd_skips;
  Metrics.add (Metrics.counter registry "litmus.sleep_skips_di") s.di_skips;
  Metrics.add (Metrics.counter registry "litmus.sleep_skips_ii") s.ii_skips;
  Metrics.add (Metrics.counter registry "litmus.explorations") 1;
  Metrics.set_max (Metrics.gauge registry "litmus.max_frontier")
    (float_of_int s.max_frontier);
  Metrics.set_max (Metrics.gauge registry "litmus.peak_states_per_sec")
    (states_per_sec s);
  let elapsed = Metrics.gauge registry "litmus.elapsed_s" in
  Metrics.set elapsed (Metrics.gauge_value elapsed +. s.elapsed)

module For_tests = struct
  type debug = { interned : int; arena_growths : int; arena_words : int }

  let explore_instrumented ~mode ?(addrs = 4) ?(regs = 4)
      ?(max_states = default_max_states) ?arena_words ?table_slots ?on_intern
      programs =
    let r, (interned, arena_growths, arena_words) =
      enumerate_core ~mode ~addrs ~regs ~max_states ~profiler:Span.disabled
        ?arena_words ?table_slots ?on_intern programs
    in
    (r, { interned; arena_growths; arena_words })
end
