type kind = Wake | Deadline

let no_deadline = max_int

(* Canonicalization: ∞-saturate unreachable deadlines, then rewrite the
   remaining finite timers to the least configuration with the same
   order/tie pattern whose base agrees with the original up to
   [base_cap] and whose adjacent gaps agree up to [gap_cap] (a value or
   gap ≥ its cap is indistinguishable from the cap, so both are pinned
   exactly at it). See the .mli for why this preserves the outcome
   set.

   [normalize_into] is the allocation-free form on the explorer's hot
   path: it rewrites [values.(0..len-1)] in place using the caller's
   [scratch] (≥ 2·len words: distinct originals in the first half,
   their canonical images in the second). Timer vectors are tiny (one
   word per waiting thread or buffered store), so the distinct-value
   set is built by insertion sort and looked up linearly. *)
let normalize_into ~horizon ~base_cap ~gap_cap kinds values ~len ~scratch =
  let changed = ref false in
  for i = 0 to len - 1 do
    if kinds.(i) = Deadline && values.(i) <> no_deadline && values.(i) >= horizon
    then begin
      values.(i) <- no_deadline;
      changed := true
    end
  done;
  (* Distinct finite values, ascending, in scratch.(0..d-1). *)
  let d = ref 0 in
  for i = 0 to len - 1 do
    let x = values.(i) in
    if x <> no_deadline then begin
      (* Insertion point (and duplicate check) by backwards scan. *)
      let j = ref !d in
      while !j > 0 && scratch.(!j - 1) > x do
        decr j
      done;
      if not (!j > 0 && scratch.(!j - 1) = x) then begin
        for k = !d downto !j + 1 do
          scratch.(k) <- scratch.(k - 1)
        done;
        scratch.(!j) <- x;
        incr d
      end
    end
  done;
  let d = !d in
  if d > 0 then begin
    scratch.(len) <- min scratch.(0) base_cap;
    for j = 1 to d - 1 do
      scratch.(len + j) <-
        scratch.(len + j - 1) + min (scratch.(j) - scratch.(j - 1)) gap_cap
    done;
    for i = 0 to len - 1 do
      if values.(i) <> no_deadline then begin
        let j = ref 0 in
        while scratch.(!j) <> values.(i) do
          incr j
        done;
        let c = scratch.(len + !j) in
        if c <> values.(i) then begin
          values.(i) <- c;
          changed := true
        end
      end
    done
  end;
  !changed

let normalize ~horizon ~base_cap ~gap_cap kinds values =
  let n = Array.length values in
  if Array.length kinds <> n then
    invalid_arg "Zone.normalize: kinds/values length mismatch";
  let v = Array.copy values in
  ignore
    (normalize_into ~horizon ~base_cap ~gap_cap kinds v ~len:n
       ~scratch:(Array.make (2 * n) 0));
  v

type t = { kinds : kind array; values : int array }

let of_timers ~horizon ~base_cap ~gap_cap timers =
  let kinds = Array.of_list (List.map fst timers) in
  let raw = Array.of_list (List.map snd timers) in
  Array.iter
    (fun x ->
      if x < 0 then invalid_arg "Zone.of_timers: negative timer";
      ())
    raw;
  { kinds; values = normalize ~horizon ~base_cap ~gap_cap kinds raw }

let kinds z = Array.copy z.kinds

let values z = Array.copy z.values

let equal a b = a.kinds = b.kinds && a.values = b.values

let leq a b =
  Array.length a.kinds = Array.length b.kinds
  && a.kinds = b.kinds
  &&
  let ok = ref true in
  Array.iteri
    (fun i k ->
      match k with
      | Wake -> if a.values.(i) <> b.values.(i) then ok := false
      | Deadline -> if a.values.(i) > b.values.(i) then ok := false)
    a.kinds;
  !ok

let pp fmt z =
  Format.fprintf fmt "[";
  Array.iteri
    (fun i k ->
      if i > 0 then Format.fprintf fmt "; ";
      let v = z.values.(i) in
      match k with
      | Wake -> Format.fprintf fmt "w%d" v
      | Deadline ->
          if v = no_deadline then Format.fprintf fmt "d∞"
          else Format.fprintf fmt "d%d" v)
    z.kinds;
  Format.fprintf fmt "]"
