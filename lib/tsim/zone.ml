type kind = Wake | Deadline

let no_deadline = max_int

(* Canonicalization: ∞-saturate unreachable deadlines, then rewrite the
   remaining finite timers to the least configuration with the same
   order/tie pattern whose base agrees with the original up to
   [base_cap] and whose adjacent gaps agree up to [gap_cap] (a value or
   gap ≥ its cap is indistinguishable from the cap, so both are pinned
   exactly at it). See the .mli for why this preserves the outcome
   set. *)
let normalize ~horizon ~base_cap ~gap_cap kinds values =
  let n = Array.length values in
  if Array.length kinds <> n then
    invalid_arg "Zone.normalize: kinds/values length mismatch";
  let v = Array.copy values in
  for i = 0 to n - 1 do
    if kinds.(i) = Deadline && v.(i) <> no_deadline && v.(i) >= horizon then
      v.(i) <- no_deadline
  done;
  (* Distinct finite values, ascending. *)
  let finite = ref [] in
  for i = n - 1 downto 0 do
    if v.(i) <> no_deadline then finite := v.(i) :: !finite
  done;
  (match List.sort_uniq compare !finite with
  | [] -> ()
  | u0 :: rest ->
      let remap = Hashtbl.create 8 in
      Hashtbl.replace remap u0 (min u0 base_cap);
      let prev_orig = ref u0 and prev_canon = ref (min u0 base_cap) in
      List.iter
        (fun u ->
          let c = !prev_canon + min (u - !prev_orig) gap_cap in
          Hashtbl.replace remap u c;
          prev_orig := u;
          prev_canon := c)
        rest;
      for i = 0 to n - 1 do
        if v.(i) <> no_deadline then v.(i) <- Hashtbl.find remap v.(i)
      done);
  v

type t = { kinds : kind array; values : int array }

let of_timers ~horizon ~base_cap ~gap_cap timers =
  let kinds = Array.of_list (List.map fst timers) in
  let raw = Array.of_list (List.map snd timers) in
  Array.iter
    (fun x ->
      if x < 0 then invalid_arg "Zone.of_timers: negative timer";
      ())
    raw;
  { kinds; values = normalize ~horizon ~base_cap ~gap_cap kinds raw }

let kinds z = Array.copy z.kinds

let values z = Array.copy z.values

let equal a b = a.kinds = b.kinds && a.values = b.values

let leq a b =
  Array.length a.kinds = Array.length b.kinds
  && a.kinds = b.kinds
  &&
  let ok = ref true in
  Array.iteri
    (fun i k ->
      match k with
      | Wake -> if a.values.(i) <> b.values.(i) then ok := false
      | Deadline -> if a.values.(i) > b.values.(i) then ok := false)
    a.kinds;
  !ok

let pp fmt z =
  Format.fprintf fmt "[";
  Array.iteri
    (fun i k ->
      if i > 0 then Format.fprintf fmt "; ";
      let v = z.values.(i) in
      match k with
      | Wake -> Format.fprintf fmt "w%d" v
      | Deadline ->
          if v = no_deadline then Format.fprintf fmt "d∞"
          else Format.fprintf fmt "d%d" v)
    z.kinds;
  Format.fprintf fmt "]"
