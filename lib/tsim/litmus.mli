(** Exhaustive litmus-test checker.

    Enumerates {e every} interleaving of straight-line multi-threaded
    programs under SC, TSO and TBTSO[Δ], including every legal store-buffer
    drain schedule, and returns the set of reachable final outcomes.
    This is the tool used to {e prove} (for bounded programs) statements
    such as "the TBTSO flag principle never loses both flags", rather than
    merely sampling schedules as the {!Machine} does.

    Time is interleaving time: each action (instruction execution,
    store-buffer drain, or idle tick while some thread waits) advances the
    global clock by exactly one unit, matching the paper's abstract
    machine where at most one action executes per time unit. Under
    TBTSO[Δ] any execution in which a buffered store cannot be drained by
    its [enqueue + Δ] deadline is pruned, which is exactly the paper's
    admissibility condition.

    {b Tick granularity vs the simulator.} The {!Machine} simulator is
    coarser: one of its ticks can take an interrupt, force Δ-expired
    commits and let every thread both drain and execute. The directions
    are deliberately conservative on both sides — this checker's
    one-action-per-tick interleavings are a superset of the orderings
    the machine's scheduler can sample (stretch any busy machine tick
    into consecutive checker ticks), so an invariant proved here covers
    every machine run; while the machine's extra same-tick drains only
    commit stores {i earlier} than the paper's machine would, so its
    measured residencies under-approximate no Δ deadline. The price is
    that checker time and machine time are not unit-compatible: a
    checker trace replayed on the machine must first serialize each
    machine tick's phases. See {!Machine} and ROADMAP.

    The checker is an iterative explicit-state explorer with four
    scaling devices, all of which preserve the outcome set exactly:

    - {b time-leap aging}: instead of idling one tick at a time through
      a quiet stretch (every unfinished thread mid-wait), the explorer
      jumps straight to the next wakeup.
    - {b zone canonicalization}: every state's live timers — wake
      timers from waits, deadline timers from store slacks — are mapped
      to their canonical {!Zone} representative: deadlines beyond the
      remaining horizon saturate to "no deadline", and the finite
      timers are base/gap-clamped at a Δ-{e independent} cap
      ([2 + remaining actions + unstarted wait mass]) that preserves
      every observable difference (see {!Zone} for the argument). This
      is what makes the explored state count for deadline-vs-wait races
      (the flag protocol with wait ≈ Δ) flat in Δ instead of linear,
      and paper-scale bounds (Δ = 500 and far beyond) checkable.
    - {b hash-consed states}: canonical states are interned into a
      dense id space at push time (FNV-1a over an integer encoding);
      the worklist and the hot dedup path then work on ids.
    - {b sleep sets over drains {e and} instructions}: after exploring
      one order of an independent action pair the reversed order is
      never explored. Independence covers drain/drain (distinct
      threads, distinct addresses), drain/instruction (the instruction's
      read/write footprint — refined by store-buffer forwarding — misses
      the drained address) and instruction/instruction (disjoint
      footprints), each with an exact reversed-order-feasibility guard
      on the drained entry's slack; instructions that start a fresh
      timer (TBTSO stores, waits) commute with nothing and are excluded.
    - {b source-DPOR with wakeup sequences} ([dpor:true]): at
      {e timer-free} states (no live waits, all buffered slacks
      ∞-saturated by zone canonicalization — where one aging tick is the
      identity and independence is exactly footprint disjointness)
      first-visit branching is reduced to a source set: the first
      eligible action plus whatever detected races demand. Races are
      found by a backward vector-clock walk over the DFS stack and
      recorded as wakeup sequences at the earliest reversible frame,
      replayed as guided descents. Timer states keep the full expansion,
      so the reduction is sound wherever timing is observable; skipped
      re-visits replay an aggregated footprint summary of the previously
      completed subtree so reversals behind the dedup are not lost.

    {!enumerate_reference} retains the original recursive tick-by-tick
    enumerator as a differential-testing oracle. *)

type mode =
  | M_sc
  | M_tso
  | M_tbtso of int
  | M_tsos of int
      (** TSO[S] (Morrison & Afek 2014): buffer capacity [s], no
          temporal bound — the paper's Section 8 comparison model. *)

type instr =
  | Store of int * int  (** [Store (addr, v)] *)
  | Load of int * int  (** [Load (addr, reg)] — result into a register. *)
  | Loadeq of int * int * int
      (** [Loadeq (addr, v, skip)] — load; if the value equals [v], skip
          the next [skip] instructions (minimal conditional support). *)
  | Fence  (** Executable only once the thread's buffer is empty. *)
  | Wait of int  (** Block for at least [n] time units. *)
  | Cas of int * int * int * int
      (** [Cas (addr, expected, desired, reg)] — atomic compare-and-swap;
          drains the buffer first (x86 locked-op semantics); [reg] gets
          1 on success, 0 on failure. *)

type outcome = {
  regs : int array array;  (** Final registers, [regs.(tid).(r)]. *)
  mem : int array;  (** Final memory, all buffers drained. *)
}

type stats = {
  visited : int;  (** Distinct states expanded. *)
  dedup_hits : int;  (** Arrivals at an already-covered state. *)
  canon_hits : int;
      (** Pushes whose canonical state was already interned in the
          hash-consed store (id reuse, no re-encoding on pop). *)
  zones_merged : int;
      (** Canonicalizations that actually rewrote a timer — i.e.
          distinct concrete counter vectors merged into one zone
          representative. *)
  max_frontier : int;  (** Peak worklist depth. *)
  time_leaps : int;  (** Multi-tick idle jumps taken. *)
  sleep_skips : int;  (** Actions pruned by the sleep sets (total). *)
  dd_skips : int;  (** …of which drain/drain independence. *)
  di_skips : int;  (** …of which drain/instruction independence. *)
  ii_skips : int;  (** …of which instruction/instruction independence. *)
  races_detected : int;
      (** Reversible dependent pairs found by the DPOR race walks
          (path races and summary-replayed races); 0 without [dpor]. *)
  wut_nodes : int;
      (** Total length of wakeup sequences accepted into wakeup trees
          (subsumed insertions add nothing); 0 without [dpor]. *)
  source_set_hits : int;
      (** Enabled, un-slept actions a reduced (timer-free) state never
          had to expand — the branching the source sets saved;
          0 without [dpor]. *)
  frontier_steals : int;
      (** Hand-off seeds executed by worker tasks during a pooled
          intra-exploration run; 0 on sequential runs. *)
  elapsed : float;  (** CPU seconds spent exploring. *)
}

type result = {
  outcomes : outcome list;  (** Deduplicated and sorted. *)
  complete : bool;
      (** [false] when [max_states] was reached: [outcomes] is then the
          (sound but possibly incomplete) set found so far. *)
  stats : stats;
}

val default_max_states : int
(** 2 million states. *)

val explore :
  mode:mode ->
  ?addrs:int ->
  ?regs:int ->
  ?max_states:int ->
  ?profiler:Tbtso_obs.Span.t ->
  ?dpor:bool ->
  ?pool:Tbtso_par.Pool.t ->
  ?task_budget:int ->
  instr list list ->
  result
(** All reachable outcomes, with exploration statistics. [addrs] and
    [regs] default to 4. Never raises on state-budget exhaustion: a
    partial exploration is reported through [complete = false].

    [dpor] (default false) switches the engine to the source-DPOR DFS
    (see the module preamble): the outcome set and completeness verdict
    are identical, only fewer states are visited and the
    [races_detected] / [wut_nodes] / [source_set_hits] stats become
    live.

    [pool] (with ≥ 2 domains) parallelizes {e within} this one
    exploration: a short sequential phase splits the frontier into
    packed-key seeds, which worker tasks explore independently under
    doubling per-task budgets, handing unfinished frontiers back as new
    seeds ([frontier_steals] counts them). Outcomes and [complete] are
    byte-identical to the sequential run; stats count the work actually
    done. [task_budget] overrides the initial per-task state budget
    (testing knob — small values force hand-off rounds).

    [profiler] (default disabled) accumulates the per-phase wall-time
    breakdown into the [explore.expand] / [explore.canon] /
    [explore.intern] / [explore.sleep] phases — [expand] is inclusive
    of the other three — plus, under [dpor], [explore.race] (race walks
    and summary replays) and [explore.wut] (wakeup-sequence
    construction); items count expansions, canonicalizations,
    hash-cons probes and sleep-set computations. Profiling never
    affects the exploration itself: outcome sets and statistics are
    identical whether the profiler is enabled, disabled or absent. *)

val enumerate :
  mode:mode ->
  ?addrs:int ->
  ?regs:int ->
  ?max_states:int ->
  instr list list ->
  outcome list
(** [(explore ...).outcomes], for callers that only want the set.
    @raise Failure if more than [max_states] (default
    {!default_max_states}) distinct states are visited. *)

val enumerate_reference :
  mode:mode ->
  ?addrs:int ->
  ?regs:int ->
  ?max_states:int ->
  instr list list ->
  outcome list
(** The original recursive, tick-by-tick, string-keyed enumerator, kept
    as the differential-testing oracle for {!explore}: both must return
    the identical outcome set on every program. Needs stack and state
    space linear in wait durations and Δ, so only suitable for small
    bounds. @raise Failure as {!enumerate}. *)

val exists : outcome list -> (outcome -> bool) -> bool

val for_all : outcome list -> (outcome -> bool) -> bool

val pp_outcome : Format.formatter -> outcome -> unit

val pp_stats : Format.formatter -> stats -> unit
(** One-line rendering of exploration statistics. *)

val states_per_sec : stats -> float
(** [visited / elapsed]; 0 when the exploration was too fast to time. *)

val stats_json : stats -> Tbtso_obs.Json.t
(** Flat object with every {!stats} field plus [states_per_sec]. *)

module For_tests : sig
  (** White-box hooks into the hash-cons arena, for the differential and
      stress suites only. Nothing here affects exploration results. *)

  type debug = {
    interned : int;  (** Distinct canonical states interned. *)
    arena_growths : int;
        (** Times the packed-key arena had to reallocate (doubling). *)
    arena_words : int;  (** Words of packed keys stored in the arena. *)
  }

  val explore_instrumented :
    mode:mode ->
    ?addrs:int ->
    ?regs:int ->
    ?max_states:int ->
    ?dpor:bool ->
    ?arena_words:int ->
    ?table_slots:int ->
    ?on_intern:(int array -> int -> unit) ->
    instr list list ->
    result * debug
  (** {!explore} with the arena exposed: [arena_words] / [table_slots]
      set the {e initial} capacities (words / open-addressing slots;
      deliberately tiny values force mid-exploration growth),
      [on_intern key id] is called on every intern — hit or miss — with
      a fresh copy of the packed key and the dense id it mapped to. The
      (key, id) stream defines the interning partition: two calls carry
      equal keys iff they carry equal ids. *)

  (** The wakeup-sequence store used per DFS frame by the DPOR engine,
      exposed for white-box insertion/subsumption tests. *)
  module Wut : sig
    type t

    val create : unit -> t

    val pending : t -> bool

    val nodes : t -> int
    (** Total length of the sequences ever accepted. *)

    val insert :
      t ->
      initials:int ->
      scheduled:int ->
      int array ->
      [ `Added | `Subsumed ]
    (** [insert t ~initials ~scheduled v] adds the wakeup sequence [v]
        (action procs, execution order) unless it is redundant:
        [initials] is the bitmask of procs whose event can start [v]
        (its weak initials), and the insert is subsumed when one of
        them is already in [scheduled] (the frame's explored/planned
        set — the source-set condition) or when a stored sequence is a
        prefix of [v]. *)

    val take : t -> int array option
    (** Pop the oldest pending sequence (FIFO). *)
  end
end

val record_stats : Tbtso_obs.Metrics.t -> stats -> unit
(** Accumulate one exploration into a registry: counters
    [litmus.states_visited], [litmus.dedup_hits], [litmus.canon_hits],
    [litmus.zones_merged], [litmus.time_leaps], [litmus.sleep_skips]
    (with the per-independence-class split [litmus.sleep_skips_dd],
    [litmus.sleep_skips_di], [litmus.sleep_skips_ii]),
    [litmus.races_detected], [litmus.wut_nodes],
    [litmus.source_set_hits], [litmus.frontier_steals] and
    [litmus.explorations] sum across calls;
    gauges [litmus.max_frontier] and [litmus.peak_states_per_sec] keep
    high watermarks; gauge [litmus.elapsed_s] sums exploration CPU
    time. Lets a driver checking many (file, mode) pairs report
    aggregate throughput through {!Tbtso_obs.Metrics.to_json}. *)
