(** A Domain-based worker pool for embarrassingly parallel fan-out.

    The verification stack's outer loops — one exhaustive exploration per
    (litmus file, memory model) pair, one simulator run per benchmark
    configuration — are independent tasks of wildly varying cost. This
    pool runs them across OCaml 5 domains with:

    - {b deterministic result ordering}: {!map} returns results in
      submission order regardless of which domain finished which task
      when, so parallel drivers produce byte-identical reports;
    - {b chunked submission}: tasks are enqueued as contiguous index
      chunks under a single lock acquisition, keeping queue traffic
      negligible even for tens of thousands of trivial tasks;
    - {b caller participation}: the submitting domain works the queue
      too, so a pool of size [n] uses exactly [n] domains ([n - 1]
      spawned workers plus the caller) and a pool of size 1 degenerates
      to a plain in-line [Array.map] with zero synchronization;
    - {b fail-fast exception propagation}: the first task exception
      cancels the remaining tasks of that submission and is re-raised
      in the caller with its original backtrace;
    - {b per-domain metrics}: wall-time and task counts per domain,
      exportable into a {!Tbtso_obs.Metrics} registry.

    The pool itself takes no locks around user tasks, so tasks must not
    share mutable state with each other. A pool is owned by one
    submitting thread: concurrent {!map} calls from different threads on
    the same pool are not supported.

    Every simulator entry point the pool is pointed at ({!Tsim.Litmus}
    exploration, {!Tsim.Machine} runs) keeps its state in values created
    per call — the [tsim] library has no module-level mutable state —
    so tasks are domain-safe by construction. *)

type t

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()] capped at {!max_domains}. *)

val max_domains : int
(** Upper cap (8) on the default pool size; explicit [~domains] may
    exceed it. *)

val create : ?domains:int -> ?profiler:Tbtso_obs.Span.t -> unit -> t
(** A pool of [domains] total workers (default {!default_domains}),
    clamped below at 1. [domains - 1] domains are spawned immediately;
    the caller is the remaining worker.

    With a recording [profiler] (default disabled) every queued chunk
    runs inside a [pool.chunk] span carrying a [tasks] counter — the
    span lands on the executing domain's buffer, so this is what
    creates (and attributes) the per-domain buffers that
    {!Tbtso_obs.Span.spans} later merges. Tasks that take the same
    profiler (e.g. {!Tsim.Litmus_fanout.check}) nest their own spans
    inside the chunk's. *)

val domains : t -> int
(** Total worker count, including the calling domain. *)

val map : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f xs] applies [f] to every element of [xs], in parallel across
    the pool's domains, and returns the results {e in input order}.
    [chunk] (default: sized so each domain sees a few chunks) is the
    number of consecutive tasks submitted as one queue item.

    If any [f xs.(i)] raises, the remaining unstarted tasks of this call
    are cancelled and the first exception is re-raised in the caller
    with its backtrace.
    @raise Invalid_argument on a pool that was {!shutdown}. *)

val map_list : ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over lists. *)

val shutdown : t -> unit
(** Drain and join the spawned domains. Idempotent. Further {!map}
    calls raise [Invalid_argument]. *)

val with_pool : ?domains:int -> ?profiler:Tbtso_obs.Span.t -> (t -> 'a) -> 'a
(** [create], run, then {!shutdown} (also on exception). *)

type worker_stats = {
  domain : int;  (** 0 = the calling domain, 1.. = spawned workers. *)
  tasks : int;  (** Tasks this domain executed. *)
  busy_s : float;  (** Wall-clock seconds this domain spent in tasks. *)
}

val stats : t -> worker_stats list
(** Per-domain totals since [create], ordered by domain index. Call
    between {!map}s (not concurrently with one). *)

val record_metrics : t -> Tbtso_obs.Metrics.t -> unit
(** Export the pool's counters into a registry, all under the [par.]
    namespace: gauge [par.domains]; counter [par.tasks] and gauge
    [par.busy_s] (totals); counter [par.domain<i>.tasks] and gauge
    [par.domain<i>.busy_s] per domain. *)
