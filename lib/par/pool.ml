type worker_stats = { domain : int; tasks : int; busy_s : float }

(* Mutable per-domain slot; slot [i] is written only by domain [i]
   (slot 0 by the caller), so no locking is needed around updates. *)
type slot = { mutable s_tasks : int; mutable s_busy : float }

type t = {
  size : int;
  mutex : Mutex.t;
  work_available : Condition.t;  (* signalled on enqueue and shutdown *)
  job_done : Condition.t;  (* signalled when a submission's last chunk ends *)
  queue : (int * (unit -> unit)) Queue.t;  (* (task count, chunk runner) *)
  mutable closed : bool;
  mutable joined : bool;
  mutable spawned : unit Domain.t array;
  slots : slot array;
  profiler : Tbtso_obs.Span.t;
}

let max_domains = 8

let default_domains () = min (Domain.recommended_domain_count ()) max_domains

(* Run one queued chunk outside the lock, charging its wall time and
   task count to this domain's slot. Chunk runners never raise: task
   exceptions are captured into the submission's error cell. With a
   recording profiler each chunk is one [pool.chunk] span on the
   executing domain's buffer — this is where the per-domain span
   buffers the tasks fill get created and later merged from. *)
let exec t id (ntasks, run) =
  let slot = t.slots.(id) in
  let t0 = Unix.gettimeofday () in
  Tbtso_obs.Span.with_span t.profiler "pool.chunk" (fun () ->
      Tbtso_obs.Span.count t.profiler "tasks" ntasks;
      run ());
  slot.s_busy <- slot.s_busy +. (Unix.gettimeofday () -. t0);
  slot.s_tasks <- slot.s_tasks + ntasks

let worker t id =
  Mutex.lock t.mutex;
  let rec loop () =
    match Queue.take_opt t.queue with
    | Some chunk ->
        Mutex.unlock t.mutex;
        exec t id chunk;
        Mutex.lock t.mutex;
        loop ()
    | None ->
        if t.closed then Mutex.unlock t.mutex
        else begin
          Condition.wait t.work_available t.mutex;
          loop ()
        end
  in
  loop ()

let create ?domains ?(profiler = Tbtso_obs.Span.disabled) () =
  let size = max 1 (match domains with Some n -> n | None -> default_domains ()) in
  let t =
    {
      size;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      job_done = Condition.create ();
      queue = Queue.create ();
      closed = false;
      joined = false;
      spawned = [||];
      slots = Array.init size (fun _ -> { s_tasks = 0; s_busy = 0.0 });
      profiler;
    }
  in
  t.spawned <-
    Array.init (size - 1) (fun i -> Domain.spawn (fun () -> worker t (i + 1)));
  t

let domains t = t.size

let shutdown t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  if not t.joined then begin
    t.joined <- true;
    Array.iter Domain.join t.spawned
  end

let with_pool ?domains ?profiler f =
  let t = create ?domains ?profiler () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Sequential fast path: a pool of one is an in-line map (the caller is
   the only worker), with exceptions propagating as usual. *)
let map_inline t f xs =
  let slot = t.slots.(0) in
  Array.map
    (fun x ->
      let t0 = Unix.gettimeofday () in
      let y = f x in
      slot.s_busy <- slot.s_busy +. (Unix.gettimeofday () -. t0);
      slot.s_tasks <- slot.s_tasks + 1;
      y)
    xs

let map ?chunk t f xs =
  if t.closed then invalid_arg "Pool.map: pool was shut down";
  let n = Array.length xs in
  if n = 0 then [||]
  else if t.size = 1 then map_inline t f xs
  else begin
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> max 1 ((n + (t.size * 4) - 1) / (t.size * 4))
    in
    let nchunks = (n + chunk - 1) / chunk in
    let results = Array.make n None in
    let remaining = ref nchunks in
    (* First task exception, with backtrace; written under the pool
       mutex, read without it (a monotone None -> Some flip used only to
       skip work early, so the race is benign). *)
    let err = ref None in
    let run_chunk c () =
      let lo = c * chunk in
      let hi = min n (lo + chunk) in
      (try
         for i = lo to hi - 1 do
           if !err = None then results.(i) <- Some (f xs.(i))
         done
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock t.mutex;
         if !err = None then err := Some (e, bt);
         Mutex.unlock t.mutex);
      Mutex.lock t.mutex;
      decr remaining;
      if !remaining = 0 then Condition.broadcast t.job_done;
      Mutex.unlock t.mutex
    in
    Mutex.lock t.mutex;
    for c = 0 to nchunks - 1 do
      let lo = c * chunk in
      Queue.push (min n (lo + chunk) - lo, run_chunk c) t.queue
    done;
    Condition.broadcast t.work_available;
    (* The caller works the queue too; once it runs dry, wait for the
       in-flight chunks of other domains to finish. *)
    let rec drive () =
      if !remaining > 0 then begin
        (match Queue.take_opt t.queue with
        | Some chunk ->
            Mutex.unlock t.mutex;
            exec t 0 chunk;
            Mutex.lock t.mutex
        | None -> Condition.wait t.job_done t.mutex);
        drive ()
      end
    in
    drive ();
    Mutex.unlock t.mutex;
    match !err with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
        Array.map (function Some y -> y | None -> assert false) results
  end

let map_list ?chunk t f xs =
  Array.to_list (map ?chunk t f (Array.of_list xs))

let stats t =
  Array.to_list
    (Array.mapi
       (fun i s -> { domain = i; tasks = s.s_tasks; busy_s = s.s_busy })
       t.slots)

let record_metrics t registry =
  let open Tbtso_obs in
  Metrics.set (Metrics.gauge registry "par.domains") (float_of_int t.size);
  let total_tasks = Metrics.counter registry "par.tasks" in
  let total_busy = Metrics.gauge registry "par.busy_s" in
  List.iter
    (fun w ->
      Metrics.add total_tasks w.tasks;
      Metrics.set total_busy (Metrics.gauge_value total_busy +. w.busy_s);
      Metrics.add
        (Metrics.counter registry (Printf.sprintf "par.domain%d.tasks" w.domain))
        w.tasks;
      let g =
        Metrics.gauge registry (Printf.sprintf "par.domain%d.busy_s" w.domain)
      in
      Metrics.set g (Metrics.gauge_value g +. w.busy_s))
    (stats t)
