(** Zero-dependency CDCL SAT solver.

    Built as the engine of the repo's {e second} litmus oracle
    ({!Tsim.Axiomatic}): where the operational explorer walks store-buffer
    states, the axiomatic oracle compiles a litmus program to clauses and
    asks this solver for every model class — so this module must share no
    code or state-space view with the explorer. It is a deliberately
    classical conflict-driven clause-learning solver:

    - {b two-watched-literal} unit propagation;
    - {b first-UIP} conflict analysis with activity (VSIDS-style) variable
      bumping and phase saving;
    - {b Luby restarts};
    - {b solve under assumptions} — a [solve ?assumptions] call treats the
      given literals as temporary top decisions, so a caller can re-query
      the same formula cheaply (the clause database, learned clauses and
      activities persist across calls);
    - {b incremental clause addition} between solves, which is exactly what
      iterated model enumeration with blocking clauses needs.

    There is no preprocessing or literal-block distance heuristic — the
    litmus encodings are thousands of clauses at most, and a transparent
    solver is worth more here than a fast one. The one concession to
    long-lived incremental use is {!simplify}, which reclaims clauses
    made permanently satisfied by retired activation literals.
    {!learned_clauses} exposes the learned set so tests can check each
    learned clause is entailed by the original formula. *)

type t

type lit = private int
(** A literal: variable [v] positively as [pos v], negated as [neg v]. *)

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable; variables are dense ints from 0. *)

val pos : int -> lit

val neg : int -> lit

val negate : lit -> lit

val lit_var : lit -> int

val lit_sign : lit -> bool
(** [true] for a positive literal. *)

val n_vars : t -> int

val n_clauses : t -> int
(** Problem clauses added (after root-level simplification; satisfied and
    tautological clauses are not counted). Learned clauses are separate —
    see {!stats}. *)

val add_clause : t -> lit list -> unit
(** Add a clause (at the root level; any ongoing solve's trail was rewound
    by the previous [solve] return). Duplicate literals are dropped,
    tautologies ignored; adding the empty clause (or a clause false under
    root-level units) makes the solver permanently unsatisfiable. *)

val add_lits : t -> lit array -> int -> unit
(** [add_lits s lits len] adds the clause [lits.(0 .. len - 1)] —
    {!add_clause} over an array prefix, for encoders that build clauses
    into a reused scratch buffer instead of allocating a list per
    clause. Entries at [len] and beyond are ignored. Same semantics as
    {!add_clause}, including the stored literal order. *)

val reserve_watch : t -> lit -> int -> unit
(** [reserve_watch s l n] pre-grows the watch list of [l] to hold [n]
    more watched clauses, so an encoder about to attach a known burst
    of clauses watching [l] (e.g. the [2·H] ladder clauses of one
    reified order comparison) pays one allocation instead of repeated
    doubling. Purely a capacity hint: stored clauses, propagation and
    search are byte-identical with or without it. Ignored for literals
    whose variable does not exist yet. *)

val ok : t -> bool
(** [false] once root-level unsatisfiability has been established; every
    further [solve] returns [false] immediately. *)

val solve : ?assumptions:lit list -> t -> bool
(** Is the formula satisfiable (under the assumptions, if given)?
    [false] under assumptions does not mark the solver [not ok] unless
    unsatisfiability holds at the root. After [true], the model is
    available through {!value} / {!lit_value} until the next [solve] or
    [add_clause]. *)

val value : t -> int -> bool
(** Model value of a variable, after a satisfiable {!solve}. *)

val lit_value : t -> lit -> bool

type stats = {
  solves : int;  (** [solve] calls, incl. immediate [not ok] returns. *)
  conflicts : int;
  decisions : int;
  propagations : int;
  learned : int;  (** Learned clauses currently retained. *)
  restarts : int;
  removed : int;  (** Clauses reclaimed by {!simplify} over the lifetime. *)
}

val stats : t -> stats
(** Cumulative over the solver's lifetime; incremental callers that want
    per-query numbers difference two snapshots. *)

val set_profiler : t -> Tbtso_obs.Span.t -> unit
(** Attach a span profiler: the hot sections of {!solve} and
    {!simplify} accumulate into the [sat.propagate] / [sat.analyze] /
    [sat.simplify] phases (items = propagations, conflicts and
    reclaimed clauses respectively, so per-second rates fall out of the
    phase totals). Call it on the domain that will run the solver —
    phase handles are domain-local ({!Tbtso_obs.Span.phase}). Solvers
    start with the disabled profiler attached: unprofiled solving costs
    one branch per instrumented section. *)

val simplify : t -> unit
(** Root-level clause-database cleaning: drop every clause (problem or
    learned) satisfied by a root-level literal. Incremental callers use
    this after {e retiring} an activation literal [a] — adding the unit
    clause [¬a] makes all clauses guarded by [a] permanently satisfied,
    and [simplify] reclaims them from the watch lists so long query
    sequences (Δ-sweeps, per-outcome probes) do not degrade propagation.
    Entailment of the remaining formula is unchanged. *)

val learned_clauses : t -> lit list list
(** The learned clauses, for invariant checks in tests: each must be a
    logical consequence of the clauses added through {!add_clause}. *)
