(* CDCL SAT solver: two-watched-literal propagation, first-UIP learning,
   activity decisions with phase saving, Luby restarts, assumptions.
   See solver.mli for why this stays deliberately classical. *)

module Span = Tbtso_obs.Span

type lit = int

let pos v = v lsl 1
let neg v = (v lsl 1) lor 1
let negate l = l lxor 1
let lit_var l = l lsr 1
let lit_sign l = l land 1 = 0

(* Clauses are literal arrays; the two watched literals live at indices 0
   and 1. [dummy] doubles as the "no reason" sentinel (compared with ==). *)
type clause = { lits : lit array; learnt : bool }

let dummy = { lits = [||]; learnt = false }

(* Growable clause vector, used for the per-literal watch lists. *)
type cvec = { mutable cdata : clause array; mutable csz : int }

let cvec_make () = { cdata = [||]; csz = 0 }

let cvec_push v c =
  let cap = Array.length v.cdata in
  if v.csz = cap then begin
    let d = Array.make (max 4 (2 * cap)) dummy in
    Array.blit v.cdata 0 d 0 v.csz;
    v.cdata <- d
  end;
  v.cdata.(v.csz) <- c;
  v.csz <- v.csz + 1

type stats = {
  solves : int;
  conflicts : int;
  decisions : int;
  propagations : int;
  learned : int;
  restarts : int;
  removed : int;
}

type t = {
  (* Per-variable state, grown by [new_var]. *)
  mutable nvars : int;
  mutable assign : int array;  (* -1 unassigned / 0 false / 1 true *)
  mutable level : int array;
  mutable reason : clause array;  (* dummy = decision or root unit *)
  mutable activity : float array;
  mutable phase : bool array;
  mutable seen : bool array;  (* conflict-analysis scratch *)
  mutable model : int array;  (* snapshot of [assign] after SAT *)
  mutable watches : cvec array;  (* indexed by literal *)
  (* Trail. *)
  mutable trail : lit array;
  mutable trail_sz : int;
  mutable trail_lim : int array;  (* trail size at each decision level *)
  mutable n_levels : int;
  mutable qhead : int;
  (* Heuristics. *)
  mutable var_inc : float;
  (* Status and bookkeeping. *)
  mutable ok : bool;
  mutable learnts : clause list;
  mutable n_clauses : int;
  mutable n_solves : int;
  mutable n_removed : int;
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable n_learned : int;
  mutable restarts : int;
  (* Profiling handles (no-ops until [set_profiler]). Handles are
     domain-local, so attach the profiler on the solving domain. *)
  mutable ph_propagate : Span.phase;
  mutable ph_analyze : Span.phase;
  mutable ph_simplify : Span.phase;
}

let create () =
  {
    nvars = 0;
    assign = [||];
    level = [||];
    reason = [||];
    activity = [||];
    phase = [||];
    seen = [||];
    model = [||];
    watches = [||];
    trail = [||];
    trail_sz = 0;
    trail_lim = [||];
    n_levels = 0;
    qhead = 0;
    var_inc = 1.0;
    ok = true;
    learnts = [];
    n_clauses = 0;
    n_solves = 0;
    n_removed = 0;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    n_learned = 0;
    restarts = 0;
    ph_propagate = Span.phase Span.disabled "sat.propagate";
    ph_analyze = Span.phase Span.disabled "sat.analyze";
    ph_simplify = Span.phase Span.disabled "sat.simplify";
  }

let set_profiler s p =
  s.ph_propagate <- Span.phase p "sat.propagate";
  s.ph_analyze <- Span.phase p "sat.analyze";
  s.ph_simplify <- Span.phase p "sat.simplify"

let grow_int a n fill =
  let cap = Array.length !a in
  if n > cap then begin
    let d = Array.make (max 16 (max n (2 * cap))) fill in
    Array.blit !a 0 d 0 cap;
    a := d
  end

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  let gi r fill =
    let a = ref r in
    grow_int a (v + 1) fill;
    !a
  in
  s.assign <- gi s.assign (-1);
  s.level <- gi s.level 0;
  s.model <- gi s.model (-1);
  (let cap = Array.length s.reason in
   if v >= cap then begin
     let d = Array.make (max 16 (2 * max 1 cap)) dummy in
     Array.blit s.reason 0 d 0 cap;
     s.reason <- d
   end);
  (let cap = Array.length s.activity in
   if v >= cap then begin
     let d = Array.make (max 16 (2 * max 1 cap)) 0.0 in
     Array.blit s.activity 0 d 0 cap;
     s.activity <- d
   end);
  (let cap = Array.length s.phase in
   if v >= cap then begin
     let d = Array.make (max 16 (2 * max 1 cap)) false in
     Array.blit s.phase 0 d 0 cap;
     s.phase <- d
   end);
  (let cap = Array.length s.seen in
   if v >= cap then begin
     let d = Array.make (max 16 (2 * max 1 cap)) false in
     Array.blit s.seen 0 d 0 cap;
     s.seen <- d
   end);
  (let want = 2 * (v + 1) in
   let cap = Array.length s.watches in
   if want > cap then begin
     let d = Array.init (max 32 (max want (2 * cap))) (fun _ -> cvec_make ()) in
     Array.blit s.watches 0 d 0 cap;
     s.watches <- d
   end);
  (let a = ref s.trail in
   grow_int a (v + 1) 0;
   s.trail <- !a);
  (let a = ref s.trail_lim in
   grow_int a (v + 2) 0;
   s.trail_lim <- !a);
  v

let n_vars s = s.nvars

let n_clauses s = s.n_clauses

let ok s = s.ok

(* -1 unknown / 0 false / 1 true. *)
let lit_val s l =
  let a = s.assign.(lit_var l) in
  if a < 0 then -1 else a lxor (l land 1)

let enqueue s l reason =
  let v = lit_var l in
  s.assign.(v) <- 1 lxor (l land 1);
  s.level.(v) <- s.n_levels;
  s.reason.(v) <- reason;
  s.trail.(s.trail_sz) <- l;
  s.trail_sz <- s.trail_sz + 1

let new_level s =
  (let cap = Array.length s.trail_lim in
   if s.n_levels >= cap then begin
     let d = Array.make (max 16 (2 * max 1 cap)) 0 in
     Array.blit s.trail_lim 0 d 0 cap;
     s.trail_lim <- d
   end);
  s.trail_lim.(s.n_levels) <- s.trail_sz;
  s.n_levels <- s.n_levels + 1

let cancel_until s lvl =
  if s.n_levels > lvl then begin
    let lim = s.trail_lim.(lvl) in
    for i = s.trail_sz - 1 downto lim do
      let v = lit_var s.trail.(i) in
      s.phase.(v) <- s.assign.(v) = 1;
      s.assign.(v) <- -1;
      s.reason.(v) <- dummy
    done;
    s.trail_sz <- lim;
    s.qhead <- lim;
    s.n_levels <- lvl
  end

let attach s c =
  cvec_push s.watches.(c.lits.(0)) c;
  cvec_push s.watches.(c.lits.(1)) c

(* Unit propagation. Returns the conflicting clause, or [dummy] if the
   assignment closed without conflict. A clause lives in the watch lists
   of its two watched literals; when a watched literal becomes false we
   either find a replacement watch, keep it satisfied through the other
   watch, propagate the other watch, or report it as the conflict. *)
let propagate s =
  let confl = ref dummy in
  while !confl == dummy && s.qhead < s.trail_sz do
    let p = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    let fl = negate p in
    let ws = s.watches.(fl) in
    let n = ws.csz in
    let i = ref 0 in
    let j = ref 0 in
    while !i < n do
      let c = ws.cdata.(!i) in
      incr i;
      let lits = c.lits in
      if lits.(0) = fl then begin
        lits.(0) <- lits.(1);
        lits.(1) <- fl
      end;
      let first = lits.(0) in
      if lit_val s first = 1 then begin
        ws.cdata.(!j) <- c;
        incr j
      end
      else begin
        (* Look for a non-false replacement watch. *)
        let len = Array.length lits in
        let k = ref 2 in
        while !k < len && lit_val s lits.(!k) = 0 do
          incr k
        done;
        if !k < len then begin
          lits.(1) <- lits.(!k);
          lits.(!k) <- fl;
          cvec_push s.watches.(lits.(1)) c
        end
        else begin
          ws.cdata.(!j) <- c;
          incr j;
          if lit_val s first = 0 then begin
            (* Conflict: keep the remaining watches and stop. *)
            while !i < n do
              ws.cdata.(!j) <- ws.cdata.(!i);
              incr j;
              incr i
            done;
            confl := c;
            s.qhead <- s.trail_sz
          end
          else enqueue s first c
        end
      end
    done;
    ws.csz <- !j
  done;
  !confl

let rescale_activity s =
  for v = 0 to s.nvars - 1 do
    s.activity.(v) <- s.activity.(v) *. 1e-100
  done;
  s.var_inc <- s.var_inc *. 1e-100

let bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then rescale_activity s

(* First-UIP conflict analysis. Returns the learned clause (asserting
   literal at index 0, a maximal-backjump-level literal at index 1) and
   the backjump level. Assumes the conflict is at a level > 0. *)
let analyze s confl =
  let cur = s.n_levels in
  let tail = ref [] in
  let btlevel = ref 0 in
  let counter = ref 0 in
  let to_clear = ref [] in
  let p = ref (-1) in
  (* -1: initial round, consider every literal of the conflict clause;
     afterwards [p] is the trail literal being resolved on and index 0 of
     its reason clause (== p) is skipped. *)
  let c = ref confl in
  let idx = ref (s.trail_sz - 1) in
  let uip = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let lits = (!c).lits in
    let start = if !p < 0 then 0 else 1 in
    for k = start to Array.length lits - 1 do
      let q = lits.(k) in
      let v = lit_var q in
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        s.seen.(v) <- true;
        to_clear := v :: !to_clear;
        bump s v;
        if s.level.(v) >= cur then incr counter
        else begin
          tail := q :: !tail;
          if s.level.(v) > !btlevel then btlevel := s.level.(v)
        end
      end
    done;
    (* Next trail literal (at the current level) to resolve on. *)
    while not s.seen.(lit_var s.trail.(!idx)) do
      decr idx
    done;
    let pl = s.trail.(!idx) in
    decr idx;
    s.seen.(lit_var pl) <- false;
    decr counter;
    if !counter = 0 then begin
      uip := pl;
      continue_ := false
    end
    else begin
      p := pl;
      c := s.reason.(lit_var pl)
    end
  done;
  List.iter (fun v -> s.seen.(v) <- false) !to_clear;
  let tail = !tail in
  let lits = Array.of_list (negate !uip :: tail) in
  (* Put a literal of the backjump level at index 1 so it can be watched. *)
  if Array.length lits > 1 then begin
    let best = ref 1 in
    for k = 2 to Array.length lits - 1 do
      if s.level.(lit_var lits.(k)) > s.level.(lit_var lits.(!best)) then
        best := k
    done;
    let tmp = lits.(1) in
    lits.(1) <- lits.(!best);
    lits.(!best) <- tmp
  end;
  ({ lits; learnt = true }, !btlevel)

let add_clause s lits =
  if s.ok then begin
    (* Root-level simplification: dedupe, drop false-at-root literals,
       ignore satisfied and tautological clauses. *)
    let keep = ref [] in
    let taut = ref false in
    let sat = ref false in
    List.iter
      (fun l ->
        if not (!taut || !sat) then
          match lit_val s l with
          | 1 when s.level.(lit_var l) = 0 -> sat := true
          | 0 when s.level.(lit_var l) = 0 -> ()
          | _ ->
              if List.mem (negate l) !keep then taut := true
              else if not (List.mem l !keep) then keep := l :: !keep)
      lits;
    if not (!taut || !sat) then
      match !keep with
      | [] -> s.ok <- false
      | [ l ] ->
          s.n_clauses <- s.n_clauses + 1;
          (match lit_val s l with
          | 1 -> ()
          | 0 -> s.ok <- false
          | _ -> enqueue s l dummy)
      | l0 :: l1 :: _ ->
          let arr = Array.of_list !keep in
          ignore l0;
          ignore l1;
          let c = { lits = arr; learnt = false } in
          s.n_clauses <- s.n_clauses + 1;
          attach s c
  end

(* Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let luby i =
  let rec go size seq i =
    if size - 1 = i then 1 lsl seq
    else if i >= size / 2 then go (size / 2) (seq - 1) (i - (size / 2))
    else go (size / 2) (seq - 1) i
  in
  let rec outer size seq =
    if size >= i + 1 then go size seq i else outer ((2 * size) + 1) (seq + 1)
  in
  outer 1 0

let pick_branch s =
  let best = ref (-1) in
  let best_act = ref neg_infinity in
  for v = 0 to s.nvars - 1 do
    if s.assign.(v) < 0 && s.activity.(v) > !best_act then begin
      best := v;
      best_act := s.activity.(v)
    end
  done;
  !best

let solve ?(assumptions = []) s =
  cancel_until s 0;
  s.n_solves <- s.n_solves + 1;
  if not s.ok then false
  else begin
    let asn = Array.of_list assumptions in
    let nasn = Array.length asn in
    let restart_base = 100 in
    let conflicts_budget = ref (restart_base * luby s.restarts) in
    let result = ref None in
    while !result = None do
      Span.start s.ph_propagate;
      let p0 = s.propagations in
      let confl = propagate s in
      Span.stop s.ph_propagate;
      Span.items s.ph_propagate (s.propagations - p0);
      if confl != dummy then begin
        s.conflicts <- s.conflicts + 1;
        decr conflicts_budget;
        if s.n_levels = 0 then begin
          s.ok <- false;
          result := Some false
        end
        else begin
          Span.start s.ph_analyze;
          let learnt, btlevel = analyze s confl in
          Span.stop s.ph_analyze;
          Span.items s.ph_analyze 1;
          cancel_until s btlevel;
          if Array.length learnt.lits = 1 then enqueue s learnt.lits.(0) dummy
          else begin
            attach s learnt;
            enqueue s learnt.lits.(0) learnt
          end;
          s.learnts <- learnt :: s.learnts;
          s.n_learned <- s.n_learned + 1;
          s.var_inc <- s.var_inc /. 0.95
        end
      end
      else if !conflicts_budget <= 0 && s.n_levels > nasn then begin
        (* Restart: rewind to the root; the assumption prefix is re-made
           by the decision steps below. *)
        s.restarts <- s.restarts + 1;
        conflicts_budget := restart_base * luby s.restarts;
        cancel_until s 0
      end
      else if s.n_levels < nasn then begin
        (* Extend the assumption prefix: one level per assumption, a
           dummy level when it is already implied. *)
        let a = asn.(s.n_levels) in
        match lit_val s a with
        | 1 -> new_level s
        | 0 -> result := Some false
        | _ ->
            new_level s;
            enqueue s a dummy
      end
      else begin
        match pick_branch s with
        | -1 ->
            (* Full model. *)
            Array.blit s.assign 0 s.model 0 s.nvars;
            result := Some true
        | v ->
            s.decisions <- s.decisions + 1;
            new_level s;
            enqueue s (if s.phase.(v) then pos v else neg v) dummy
      end
    done;
    cancel_until s 0;
    !result = Some true
  end

let value s v = s.model.(v) = 1

let lit_value s l = s.model.(lit_var l) lxor (l land 1) = 1

(* Root-level clause-database cleaning, used by incremental callers that
   retire activation literals (adding the unit [¬a] makes every clause
   guarded by [a] permanently satisfied). A clause satisfied by a
   root-level literal can never propagate or conflict again, so dropping
   it from both watch lists (and from the learned set) preserves the
   solver's entailment exactly. Root-level [reason] entries are never
   dereferenced — conflict analysis skips level-0 variables — so removal
   is safe even for clauses that forced a root unit. *)
let root_satisfied s c =
  let n = Array.length c.lits in
  let rec go i =
    i < n
    && ((lit_val s c.lits.(i) = 1 && s.level.(lit_var c.lits.(i)) = 0)
       || go (i + 1))
  in
  go 0

let simplify_work s =
  cancel_until s 0;
  if s.ok then
    if propagate s != dummy then s.ok <- false
    else begin
      let removed = ref 0 in
      Array.iter
        (fun ws ->
          let j = ref 0 in
          for i = 0 to ws.csz - 1 do
            let c = ws.cdata.(i) in
            if root_satisfied s c then incr removed
            else begin
              ws.cdata.(!j) <- c;
              incr j
            end
          done;
          for i = !j to ws.csz - 1 do
            ws.cdata.(i) <- dummy
          done;
          ws.csz <- !j)
        s.watches;
      (* Each removed clause sat in exactly two watch lists. *)
      let dropped = !removed / 2 in
      let live_learnts = List.filter (fun c -> not (root_satisfied s c)) s.learnts in
      let dropped_learnt = List.length s.learnts - List.length live_learnts in
      s.learnts <- live_learnts;
      s.n_learned <- s.n_learned - dropped_learnt;
      s.n_clauses <- s.n_clauses - (dropped - dropped_learnt);
      s.n_removed <- s.n_removed + dropped
    end

let simplify s =
  Span.start s.ph_simplify;
  let r0 = s.n_removed in
  simplify_work s;
  Span.stop s.ph_simplify;
  Span.items s.ph_simplify (s.n_removed - r0)

let stats s =
  {
    solves = s.n_solves;
    conflicts = s.conflicts;
    decisions = s.decisions;
    propagations = s.propagations;
    learned = s.n_learned;
    restarts = s.restarts;
    removed = s.n_removed;
  }

let learned_clauses s =
  List.rev_map (fun c -> Array.to_list c.lits) s.learnts
