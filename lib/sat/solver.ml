(* CDCL SAT solver: two-watched-literal propagation, first-UIP learning,
   activity decisions with phase saving, Luby restarts, assumptions.
   See solver.mli for why this stays deliberately classical.

   Storage layout: the whole clause database lives in one flat int-array
   arena. A clause is an offset [cref] into the arena: the header word
   at [cref] packs [size lsl 1 lor learnt], the literals follow inline
   at [cref + 1 .. cref + size], with the two watched literals at slots
   1 and 2. Offset 0 is reserved as the null reference ([cref_undef],
   doubling as "no reason"), so the arena starts writing at word 1.
   Watch lists are unboxed int vectors of (cref, blocker) pairs — the
   blocker is a literal of the clause (kept in sync with the other
   watch on every touch) whose being true proves the clause satisfied,
   so most visits skip without dereferencing the clause at all. Learned
   and scratch vectors are int vectors too: propagation, analysis and
   clause addition allocate nothing on their steady-state paths, and
   clause references survive arena reallocation (they are offsets, not
   pointers). Retired clauses ({!simplify}) are dropped from the watch
   lists and the learned set but their arena words are not reclaimed —
   the encodings here are thousands of clauses, far below the point
   where arena compaction would pay. *)

module Span = Tbtso_obs.Span

type lit = int

let pos v = v lsl 1
let neg v = (v lsl 1) lor 1
let negate l = l lxor 1
let lit_var l = l lsr 1
let lit_sign l = l land 1 = 0

let cref_undef = 0

(* Growable unboxed int vector: watch lists ((cref, blocker) pairs, so
   always an even count), the learned-clause cref list and the
   analysis / add-clause scratch buffers. *)
type ivec = { mutable idata : int array; mutable isz : int }

let ivec_make () = { idata = [||]; isz = 0 }

let ivec_push v x =
  let cap = Array.length v.idata in
  if v.isz = cap then begin
    let d = Array.make (max 8 (2 * cap)) 0 in
    Array.blit v.idata 0 d 0 v.isz;
    v.idata <- d
  end;
  v.idata.(v.isz) <- x;
  v.isz <- v.isz + 1

(* Watch-list entries are (cref, blocker) pairs; pushing them through
   one capacity check halves the branch count on the attach and
   watch-move hot paths. *)
let ivec_push2 v x y =
  let cap = Array.length v.idata in
  if v.isz + 2 > cap then begin
    let d = Array.make (max 8 (max (v.isz + 2) (2 * cap))) 0 in
    Array.blit v.idata 0 d 0 v.isz;
    v.idata <- d
  end;
  let i = v.isz in
  v.idata.(i) <- x;
  v.idata.(i + 1) <- y;
  v.isz <- i + 2

(* Pre-grow capacity for [extra] more ints so a known burst of pushes
   (an encoder attaching a ladder of clauses to one literal) costs one
   allocation instead of O(log) doublings. Contents and size are
   untouched — reservation can never change solver behaviour. *)
let ivec_reserve v extra =
  let need = v.isz + extra in
  let cap = Array.length v.idata in
  if need > cap then begin
    let d = Array.make (max 8 (max need (2 * cap))) 0 in
    Array.blit v.idata 0 d 0 v.isz;
    v.idata <- d
  end

type stats = {
  solves : int;
  conflicts : int;
  decisions : int;
  propagations : int;
  learned : int;
  restarts : int;
  removed : int;
}

type t = {
  (* Clause arena. *)
  mutable ca : int array;
  mutable ca_used : int;
  (* Per-variable state, grown by [new_var]. *)
  mutable nvars : int;
  mutable assign : int array;  (* -1 unassigned / 0 false / 1 true *)
  mutable level : int array;
  mutable reason : int array;  (* cref; [cref_undef] = decision or root unit *)
  mutable activity : float array;
  mutable phase : bool array;
  mutable seen : bool array;  (* conflict-analysis scratch *)
  mutable model : int array;  (* snapshot of [assign] after SAT *)
  mutable watches : ivec array;  (* indexed by literal; (cref, blocker)* *)
  (* Trail. *)
  mutable trail : lit array;
  mutable trail_sz : int;
  mutable trail_lim : int array;  (* trail size at each decision level *)
  mutable n_levels : int;
  mutable qhead : int;
  (* Heuristics. Decision candidates live in a max-heap ordered by
     activity ([heap] holds variables, [heap_pos] maps a variable to its
     slot or -1): picking a branch variable is O(log n) instead of a
     full activity scan, which dominated outcome-enumeration passes that
     decide thousands of times between conflicts. Variables re-enter the
     heap when unassigned by {!cancel_until}; stale (assigned) entries
     are discarded lazily by {!pick_branch}. *)
  mutable var_inc : float;
  mutable heap : int array;
  mutable heap_sz : int;
  mutable heap_pos : int array;
  (* Status and bookkeeping. *)
  mutable ok : bool;
  learnts : ivec;  (* crefs, oldest first *)
  tmp_tail : ivec;  (* analysis: sub-current-level learned literals *)
  tmp_clear : ivec;  (* analysis: seen flags to reset *)
  tmp_add : ivec;  (* add_clause: deduped literals, acceptance order *)
  mutable n_clauses : int;
  mutable n_solves : int;
  mutable n_removed : int;
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable n_learned : int;
  mutable restarts : int;
  (* Profiling handles (no-ops until [set_profiler]). Handles are
     domain-local, so attach the profiler on the solving domain. *)
  mutable ph_propagate : Span.phase;
  mutable ph_analyze : Span.phase;
  mutable ph_simplify : Span.phase;
}

let create () =
  {
    ca = Array.make 1024 0;
    ca_used = 1;
    (* word 0 is [cref_undef] *)
    nvars = 0;
    assign = [||];
    level = [||];
    reason = [||];
    activity = [||];
    phase = [||];
    seen = [||];
    model = [||];
    watches = [||];
    trail = [||];
    trail_sz = 0;
    trail_lim = [||];
    n_levels = 0;
    qhead = 0;
    var_inc = 1.0;
    heap = [||];
    heap_sz = 0;
    heap_pos = [||];
    ok = true;
    learnts = ivec_make ();
    tmp_tail = ivec_make ();
    tmp_clear = ivec_make ();
    tmp_add = ivec_make ();
    n_clauses = 0;
    n_solves = 0;
    n_removed = 0;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    n_learned = 0;
    restarts = 0;
    ph_propagate = Span.phase Span.disabled "sat.propagate";
    ph_analyze = Span.phase Span.disabled "sat.analyze";
    ph_simplify = Span.phase Span.disabled "sat.simplify";
  }

let set_profiler s p =
  s.ph_propagate <- Span.phase p "sat.propagate";
  s.ph_analyze <- Span.phase p "sat.analyze";
  s.ph_simplify <- Span.phase p "sat.simplify"

(* Clause-arena access. *)
let clause_size ca cref = ca.(cref) lsr 1

let clause_learnt ca cref = ca.(cref) land 1 = 1

let ca_ensure s extra =
  let cap = Array.length s.ca in
  if s.ca_used + extra > cap then begin
    let newcap = ref (max 1024 (2 * cap)) in
    while s.ca_used + extra > !newcap do
      newcap := 2 * !newcap
    done;
    let d = Array.make !newcap 0 in
    Array.blit s.ca 0 d 0 s.ca_used;
    s.ca <- d
  end

(* Reserve a clause of [size] literals; the caller fills slots
   [cref + 1 .. cref + size]. *)
let alloc_clause s size learnt =
  ca_ensure s (size + 1);
  let cref = s.ca_used in
  s.ca.(cref) <- (size lsl 1) lor (if learnt then 1 else 0);
  s.ca_used <- cref + size + 1;
  cref

let grow_int a n fill =
  let cap = Array.length !a in
  if n > cap then begin
    let d = Array.make (max 16 (max n (2 * cap))) fill in
    Array.blit !a 0 d 0 cap;
    a := d
  end

(* Activity max-heap over decision candidates. [heap] has capacity
   ≥ [nvars] (grown by [new_var]), so inserts never reallocate. *)
let heap_lt s v w = s.activity.(v) > s.activity.(w)

let heap_up s i0 =
  let v = s.heap.(i0) in
  let i = ref i0 in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    heap_lt s v s.heap.(p)
  do
    let p = (!i - 1) / 2 in
    s.heap.(!i) <- s.heap.(p);
    s.heap_pos.(s.heap.(!i)) <- !i;
    i := p
  done;
  s.heap.(!i) <- v;
  s.heap_pos.(v) <- !i

let heap_down s i0 =
  let v = s.heap.(i0) in
  let i = ref i0 in
  let continue_ = ref true in
  while !continue_ do
    let l = (2 * !i) + 1 in
    if l >= s.heap_sz then continue_ := false
    else begin
      let r = l + 1 in
      let c =
        if r < s.heap_sz && heap_lt s s.heap.(r) s.heap.(l) then r else l
      in
      if heap_lt s s.heap.(c) v then begin
        s.heap.(!i) <- s.heap.(c);
        s.heap_pos.(s.heap.(!i)) <- !i;
        i := c
      end
      else continue_ := false
    end
  done;
  s.heap.(!i) <- v;
  s.heap_pos.(v) <- !i

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    s.heap.(s.heap_sz) <- v;
    s.heap_pos.(v) <- s.heap_sz;
    s.heap_sz <- s.heap_sz + 1;
    heap_up s (s.heap_sz - 1)
  end

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  let gi r fill =
    let a = ref r in
    grow_int a (v + 1) fill;
    !a
  in
  s.assign <- gi s.assign (-1);
  s.level <- gi s.level 0;
  s.model <- gi s.model (-1);
  s.reason <- gi s.reason cref_undef;
  (let cap = Array.length s.activity in
   if v >= cap then begin
     let d = Array.make (max 16 (2 * max 1 cap)) 0.0 in
     Array.blit s.activity 0 d 0 cap;
     s.activity <- d
   end);
  (let cap = Array.length s.phase in
   if v >= cap then begin
     let d = Array.make (max 16 (2 * max 1 cap)) false in
     Array.blit s.phase 0 d 0 cap;
     s.phase <- d
   end);
  (let cap = Array.length s.seen in
   if v >= cap then begin
     let d = Array.make (max 16 (2 * max 1 cap)) false in
     Array.blit s.seen 0 d 0 cap;
     s.seen <- d
   end);
  (let want = 2 * (v + 1) in
   let cap = Array.length s.watches in
   if want > cap then begin
     let d = Array.init (max 32 (max want (2 * cap))) (fun _ -> ivec_make ()) in
     Array.blit s.watches 0 d 0 cap;
     s.watches <- d
   end);
  (let a = ref s.trail in
   grow_int a (v + 1) 0;
   s.trail <- !a);
  (let a = ref s.trail_lim in
   grow_int a (v + 2) 0;
   s.trail_lim <- !a);
  (let a = ref s.heap in
   grow_int a (v + 1) 0;
   s.heap <- !a);
  (let a = ref s.heap_pos in
   grow_int a (v + 1) (-1);
   s.heap_pos <- !a);
  heap_insert s v;
  v

let n_vars s = s.nvars

let n_clauses s = s.n_clauses

let ok s = s.ok

(* -1 unknown / 0 false / 1 true. *)
let lit_val s l =
  let a = Array.unsafe_get s.assign (lit_var l) in
  if a < 0 then -1 else a lxor (l land 1)

let enqueue s l reason =
  let v = lit_var l in
  s.assign.(v) <- 1 lxor (l land 1);
  s.level.(v) <- s.n_levels;
  s.reason.(v) <- reason;
  s.trail.(s.trail_sz) <- l;
  s.trail_sz <- s.trail_sz + 1

let new_level s =
  (let cap = Array.length s.trail_lim in
   if s.n_levels >= cap then begin
     let d = Array.make (max 16 (2 * max 1 cap)) 0 in
     Array.blit s.trail_lim 0 d 0 cap;
     s.trail_lim <- d
   end);
  s.trail_lim.(s.n_levels) <- s.trail_sz;
  s.n_levels <- s.n_levels + 1

let cancel_until s lvl =
  if s.n_levels > lvl then begin
    let lim = s.trail_lim.(lvl) in
    for i = s.trail_sz - 1 downto lim do
      let v = lit_var s.trail.(i) in
      s.phase.(v) <- s.assign.(v) = 1;
      s.assign.(v) <- -1;
      s.reason.(v) <- cref_undef;
      heap_insert s v
    done;
    s.trail_sz <- lim;
    s.qhead <- lim;
    s.n_levels <- lvl
  end

(* Watch the clause through its slot-1 and slot-2 literals, each entry
   carrying the other watch as its blocker. *)
let attach s cref =
  let l0 = s.ca.(cref + 1) in
  let l1 = s.ca.(cref + 2) in
  ivec_push2 s.watches.(l0) cref l1;
  ivec_push2 s.watches.(l1) cref l0

(* Capacity hint for a literal's watch list: room for [n] more
   (cref, blocker) pairs. Encoders that know a literal is about to
   watch a whole ladder of clauses (e.g. the reified order comparisons
   of the axiomatic encode) reserve once instead of doubling through
   the attach loop. No-op on semantics. *)
let reserve_watch s l n =
  if l >= 0 && l < Array.length s.watches then
    ivec_reserve s.watches.(l) (2 * n)

(* Unit propagation. Returns the conflicting clause, or [cref_undef] if
   the assignment closed without conflict. A clause lives in the watch
   lists of its two watched literals; when a watched literal becomes
   false we first test the entry's blocker (a literal of the clause —
   true means satisfied, skip without loading the clause), then either
   find a replacement watch, keep it satisfied through the other watch,
   propagate the other watch, or report it as the conflict. *)
let propagate s =
  let confl = ref cref_undef in
  while !confl = cref_undef && s.qhead < s.trail_sz do
    let p = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    let fl = negate p in
    let ws = s.watches.(fl) in
    let n = ws.isz in
    let wd = ws.idata in
    let i = ref 0 in
    let j = ref 0 in
    while !i < n do
      let cref = Array.unsafe_get wd !i in
      let blocker = Array.unsafe_get wd (!i + 1) in
      i := !i + 2;
      if lit_val s blocker = 1 then begin
        Array.unsafe_set wd !j cref;
        Array.unsafe_set wd (!j + 1) blocker;
        j := !j + 2
      end
      else begin
        let ca = s.ca in
        let size = clause_size ca cref in
        if Array.unsafe_get ca (cref + 1) = fl then begin
          Array.unsafe_set ca (cref + 1) (Array.unsafe_get ca (cref + 2));
          Array.unsafe_set ca (cref + 2) fl
        end;
        let first = Array.unsafe_get ca (cref + 1) in
        if lit_val s first = 1 then begin
          Array.unsafe_set wd !j cref;
          Array.unsafe_set wd (!j + 1) first;
          j := !j + 2
        end
        else begin
          (* Look for a non-false replacement watch. *)
          let k = ref 3 in
          while !k <= size && lit_val s (Array.unsafe_get ca (cref + !k)) = 0 do
            incr k
          done;
          if !k <= size then begin
            let w = Array.unsafe_get ca (cref + !k) in
            Array.unsafe_set ca (cref + 2) w;
            Array.unsafe_set ca (cref + !k) fl;
            (* [w] is non-false, hence never [fl]: this push cannot alias
               the list being compacted. *)
            ivec_push2 s.watches.(w) cref first
          end
          else begin
            Array.unsafe_set wd !j cref;
            Array.unsafe_set wd (!j + 1) first;
            j := !j + 2;
            if lit_val s first = 0 then begin
              (* Conflict: keep the remaining watches and stop. *)
              while !i < n do
                Array.unsafe_set wd !j (Array.unsafe_get wd !i);
                Array.unsafe_set wd (!j + 1) (Array.unsafe_get wd (!i + 1));
                j := !j + 2;
                i := !i + 2
              done;
              confl := cref;
              s.qhead <- s.trail_sz
            end
            else enqueue s first cref
          end
        end
      end
    done;
    ws.isz <- !j
  done;
  !confl

let rescale_activity s =
  for v = 0 to s.nvars - 1 do
    s.activity.(v) <- s.activity.(v) *. 1e-100
  done;
  s.var_inc <- s.var_inc *. 1e-100

let bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  (* Rescaling divides every activity uniformly: heap order unchanged. *)
  if s.activity.(v) > 1e100 then rescale_activity s;
  if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

(* First-UIP conflict analysis. Learns a clause (asserting literal at
   slot 1, a maximal-backjump-level literal at slot 2 so it can be
   watched), records it in the arena and the learned set, and returns
   its cref with the backjump level. Assumes the conflict is at a
   level > 0. *)
let analyze s confl =
  let cur = s.n_levels in
  let tail = s.tmp_tail in
  let to_clear = s.tmp_clear in
  tail.isz <- 0;
  to_clear.isz <- 0;
  let btlevel = ref 0 in
  let counter = ref 0 in
  let p = ref (-1) in
  (* -1: initial round, consider every literal of the conflict clause;
     afterwards [p] is the trail literal being resolved on and slot 1 of
     its reason clause (== p) is skipped. *)
  let c = ref confl in
  let idx = ref (s.trail_sz - 1) in
  let uip = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let ca = s.ca in
    let base = !c in
    let size = clause_size ca base in
    let start = if !p < 0 then 1 else 2 in
    for k = start to size do
      let q = ca.(base + k) in
      let v = lit_var q in
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        s.seen.(v) <- true;
        ivec_push to_clear v;
        bump s v;
        if s.level.(v) >= cur then incr counter
        else begin
          ivec_push tail q;
          if s.level.(v) > !btlevel then btlevel := s.level.(v)
        end
      end
    done;
    (* Next trail literal (at the current level) to resolve on. *)
    while not s.seen.(lit_var s.trail.(!idx)) do
      decr idx
    done;
    let pl = s.trail.(!idx) in
    decr idx;
    s.seen.(lit_var pl) <- false;
    decr counter;
    if !counter = 0 then begin
      uip := pl;
      continue_ := false
    end
    else begin
      p := pl;
      c := s.reason.(lit_var pl)
    end
  done;
  for k = 0 to to_clear.isz - 1 do
    s.seen.(to_clear.idata.(k)) <- false
  done;
  (* Learned clause: ¬uip first, then the tail newest-discovered first
     (the historical order, preserved for deterministic search). *)
  let m = tail.isz in
  let cref = alloc_clause s (m + 1) true in
  let ca = s.ca in
  ca.(cref + 1) <- negate !uip;
  for k = 0 to m - 1 do
    ca.(cref + 2 + k) <- tail.idata.(m - 1 - k)
  done;
  (* Put a literal of the backjump level at slot 2 so it can be watched. *)
  if m > 1 then begin
    let best = ref 2 in
    for k = 3 to m + 1 do
      if s.level.(lit_var ca.(cref + k)) > s.level.(lit_var ca.(cref + !best))
      then best := k
    done;
    let tmp = ca.(cref + 2) in
    ca.(cref + 2) <- ca.(cref + !best);
    ca.(cref + !best) <- tmp
  end;
  (cref, !btlevel)

(* Clause addition, root-level simplified: dedupe, drop false-at-root
   literals, ignore satisfied and tautological clauses. [tmp_add]
   collects the kept literals in acceptance order; the stored clause
   reverses them, preserving the historical literal order exactly.
   [addc_lit] accepts one literal (returning [false] once the clause is
   known satisfied or tautological), [addc_finish] commits. *)
let addc_lit s l =
  let keep = s.tmp_add in
  match lit_val s l with
  | 1 when s.level.(lit_var l) = 0 -> false
  | 0 when s.level.(lit_var l) = 0 -> true
  | _ ->
      let taut = ref false in
      let dup = ref false in
      for k = 0 to keep.isz - 1 do
        if keep.idata.(k) = negate l then taut := true
        else if keep.idata.(k) = l then dup := true
      done;
      if !taut then false
      else begin
        if not !dup then ivec_push keep l;
        true
      end

let addc_finish s =
  let keep = s.tmp_add in
  match keep.isz with
  | 0 -> s.ok <- false
  | 1 ->
      s.n_clauses <- s.n_clauses + 1;
      let l = keep.idata.(0) in
      (match lit_val s l with
      | 1 -> ()
      | 0 -> s.ok <- false
      | _ -> enqueue s l cref_undef)
  | m ->
      let cref = alloc_clause s m false in
      let ca = s.ca in
      for k = 0 to m - 1 do
        ca.(cref + 1 + k) <- keep.idata.(m - 1 - k)
      done;
      s.n_clauses <- s.n_clauses + 1;
      attach s cref

let add_clause s lits =
  if s.ok then begin
    s.tmp_add.isz <- 0;
    let rec go = function
      | [] -> addc_finish s
      | l :: r -> if addc_lit s l then go r else ()
    in
    go lits
  end

let add_lits s lits len =
  if s.ok then begin
    s.tmp_add.isz <- 0;
    let rec go i =
      if i >= len then addc_finish s
      else if addc_lit s lits.(i) then go (i + 1)
    in
    go 0
  end

(* Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let luby i =
  let rec go size seq i =
    if size - 1 = i then 1 lsl seq
    else if i >= size / 2 then go (size / 2) (seq - 1) (i - (size / 2))
    else go (size / 2) (seq - 1) i
  in
  let rec outer size seq =
    if size >= i + 1 then go size seq i else outer ((2 * size) + 1) (seq + 1)
  in
  outer 1 0

(* Pop until an unassigned variable surfaces; assigned entries are stale
   (their variables re-enter on backtrack) and are simply discarded. An
   empty heap means every variable is assigned: a full model. *)
let pick_branch s =
  let v = ref (-1) in
  while !v < 0 && s.heap_sz > 0 do
    let x = s.heap.(0) in
    s.heap_sz <- s.heap_sz - 1;
    s.heap_pos.(x) <- -1;
    if s.heap_sz > 0 then begin
      let last = s.heap.(s.heap_sz) in
      s.heap.(0) <- last;
      s.heap_pos.(last) <- 0;
      heap_down s 0
    end;
    if s.assign.(x) < 0 then v := x
  done;
  !v

let solve ?(assumptions = []) s =
  cancel_until s 0;
  s.n_solves <- s.n_solves + 1;
  if not s.ok then false
  else begin
    let asn = Array.of_list assumptions in
    let nasn = Array.length asn in
    let restart_base = 100 in
    let conflicts_budget = ref (restart_base * luby s.restarts) in
    let result = ref None in
    while !result = None do
      Span.start s.ph_propagate;
      let p0 = s.propagations in
      let confl = propagate s in
      Span.stop s.ph_propagate;
      Span.items s.ph_propagate (s.propagations - p0);
      if confl <> cref_undef then begin
        s.conflicts <- s.conflicts + 1;
        decr conflicts_budget;
        if s.n_levels = 0 then begin
          s.ok <- false;
          result := Some false
        end
        else begin
          Span.start s.ph_analyze;
          let learnt, btlevel = analyze s confl in
          Span.stop s.ph_analyze;
          Span.items s.ph_analyze 1;
          cancel_until s btlevel;
          let first = s.ca.(learnt + 1) in
          if clause_size s.ca learnt = 1 then enqueue s first cref_undef
          else begin
            attach s learnt;
            enqueue s first learnt
          end;
          ivec_push s.learnts learnt;
          s.n_learned <- s.n_learned + 1;
          s.var_inc <- s.var_inc /. 0.95
        end
      end
      else if !conflicts_budget <= 0 && s.n_levels > nasn then begin
        (* Restart: rewind to the root; the assumption prefix is re-made
           by the decision steps below. *)
        s.restarts <- s.restarts + 1;
        conflicts_budget := restart_base * luby s.restarts;
        cancel_until s 0
      end
      else if s.n_levels < nasn then begin
        (* Extend the assumption prefix: one level per assumption, a
           dummy level when it is already implied. *)
        let a = asn.(s.n_levels) in
        match lit_val s a with
        | 1 -> new_level s
        | 0 -> result := Some false
        | _ ->
            new_level s;
            enqueue s a cref_undef
      end
      else begin
        match pick_branch s with
        | -1 ->
            (* Full model. *)
            Array.blit s.assign 0 s.model 0 s.nvars;
            result := Some true
        | v ->
            s.decisions <- s.decisions + 1;
            new_level s;
            enqueue s (if s.phase.(v) then pos v else neg v) cref_undef
      end
    done;
    cancel_until s 0;
    !result = Some true
  end

let value s v = s.model.(v) = 1

let lit_value s l = s.model.(lit_var l) lxor (l land 1) = 1

(* Root-level clause-database cleaning, used by incremental callers that
   retire activation literals (adding the unit [¬a] makes every clause
   guarded by [a] permanently satisfied). A clause satisfied by a
   root-level literal can never propagate or conflict again, so dropping
   it from both watch lists (and from the learned set) preserves the
   solver's entailment exactly. Root-level [reason] entries are never
   dereferenced — conflict analysis skips level-0 variables — so removal
   is safe even for clauses that forced a root unit. The arena words of
   a dropped clause are simply left behind (see the header comment). *)
let root_satisfied s cref =
  let ca = s.ca in
  let size = clause_size ca cref in
  let rec go k =
    k <= size
    && ((lit_val s ca.(cref + k) = 1 && s.level.(lit_var ca.(cref + k)) = 0)
       || go (k + 1))
  in
  go 1

let simplify_work s =
  cancel_until s 0;
  if s.ok then
    if propagate s <> cref_undef then s.ok <- false
    else begin
      let removed = ref 0 in
      Array.iter
        (fun ws ->
          let j = ref 0 in
          let i = ref 0 in
          while !i < ws.isz do
            let cref = ws.idata.(!i) in
            if root_satisfied s cref then incr removed
            else begin
              ws.idata.(!j) <- cref;
              ws.idata.(!j + 1) <- ws.idata.(!i + 1);
              j := !j + 2
            end;
            i := !i + 2
          done;
          ws.isz <- !j)
        s.watches;
      (* Each removed clause sat in exactly two watch lists. *)
      let dropped = !removed / 2 in
      let lv = s.learnts in
      let j = ref 0 in
      for i = 0 to lv.isz - 1 do
        let cref = lv.idata.(i) in
        if not (root_satisfied s cref) then begin
          lv.idata.(!j) <- cref;
          incr j
        end
      done;
      let dropped_learnt = lv.isz - !j in
      lv.isz <- !j;
      s.n_learned <- s.n_learned - dropped_learnt;
      s.n_clauses <- s.n_clauses - (dropped - dropped_learnt);
      s.n_removed <- s.n_removed + dropped
    end

let simplify s =
  Span.start s.ph_simplify;
  let r0 = s.n_removed in
  simplify_work s;
  Span.stop s.ph_simplify;
  Span.items s.ph_simplify (s.n_removed - r0)

let stats s =
  {
    solves = s.n_solves;
    conflicts = s.conflicts;
    decisions = s.decisions;
    propagations = s.propagations;
    learned = s.n_learned;
    restarts = s.restarts;
    removed = s.n_removed;
  }

let learned_clauses s =
  let ca = s.ca in
  let out = ref [] in
  for i = s.learnts.isz - 1 downto 0 do
    let cref = s.learnts.idata.(i) in
    let size = clause_size ca cref in
    let lits = ref [] in
    for k = size downto 1 do
      lits := ca.(cref + k) :: !lits
    done;
    out := !lits :: !out
  done;
  !out

(* [clause_learnt] documents the header encoding; keep it referenced. *)
let _ = clause_learnt
