(** Chrome [trace_event] JSON builders.

    Produces the JSON-array trace format understood by
    [chrome://tracing] and Perfetto ([ui.perfetto.dev]): a top-level
    object with a ["traceEvents"] array of event objects. This module
    only builds and streams the events; what a "process", "thread" or
    timestamp means is the caller's business (the simulator maps
    simulated threads to tracks and simulated microseconds to [ts]).

    Timestamps and durations are in (fractional) microseconds, per the
    format. *)

type writer

val to_channel : out_channel -> writer
(** Starts the [{"traceEvents":[] JSON document on the channel. *)

val emit : writer -> Json.t -> unit
(** Append one event object. *)

val close : writer -> unit
(** Terminate the array and object (does not close the channel). *)

val thread_name : pid:int -> tid:int -> string -> Json.t
(** Metadata event naming a track. *)

val process_name : pid:int -> string -> Json.t

val instant : name:string -> ?cat:string -> pid:int -> tid:int -> ts:float ->
  ?args:(string * Json.t) list -> unit -> Json.t
(** Thread-scoped instant event (phase ["i"]). *)

val complete : name:string -> ?cat:string -> pid:int -> tid:int -> ts:float ->
  dur:float -> ?args:(string * Json.t) list -> unit -> Json.t
(** Complete event (phase ["X"]): a bar from [ts] to [ts + dur]. Use
    this for any interval whose end is known when writing — one record
    instead of a ["B"]/["E"] pair. *)

val duration_begin : name:string -> ?cat:string -> pid:int -> tid:int ->
  ts:float -> ?args:(string * Json.t) list -> unit -> Json.t
(** Duration-begin event (phase ["B"]), for open-ended intervals whose
    end is unknown at write time; close with {!duration_end} on the
    same track, or leave unterminated (Perfetto renders it to the end
    of the trace). *)

val duration_end : name:string -> ?cat:string -> pid:int -> tid:int ->
  ts:float -> unit -> Json.t
(** Duration-end event (phase ["E"]) matching {!duration_begin}. *)

val counter : name:string -> pid:int -> ts:float -> (string * float) list -> Json.t
(** Counter event (phase ["C"]): one sample per named series. *)
