(** Zero-dependency JSON values, serialization and JSONL output.

    The observability layer must not pull new opam dependencies into the
    simulator, so this is a deliberately small JSON library: a value
    type, a serializer producing valid JSON (UTF-8 pass-through, control
    characters escaped, non-finite floats mapped to [null]), a JSONL
    helper, and a parser sufficient for round-trip tests and for tooling
    that consumes the files this repo emits. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val obj : (string * t) list -> t
(** [Obj] with [Null]-valued fields dropped, for optional fields. *)

val to_string : t -> string
(** Compact (single-line) rendering. *)

val to_channel : out_channel -> t -> unit

val write_line : out_channel -> t -> unit
(** JSONL: the value on one line, then ['\n']. *)

val write_file : string -> t -> unit
(** The value then a trailing newline, replacing any existing file. *)

exception Parse_error of { pos : int; message : string }

val of_string : string -> t
(** Strict parser for the subset this module prints (plus
    insignificant whitespace): no comments, no trailing commas.
    Numbers with a ['.'], exponent, or magnitude beyond [int] parse as
    [Float]. @raise Parse_error *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on missing field or non-object. *)
