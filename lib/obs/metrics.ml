type counter = { mutable c : int }

type gauge = { mutable g : float }

type metric = M_counter of counter | M_gauge of gauge | M_hist of Hist.t

type t = { tbl : (string, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 16 }

let find_or_register t name make =
  match Hashtbl.find_opt t.tbl name with
  | Some m -> m
  | None ->
      let m = make () in
      Hashtbl.add t.tbl name m;
      m

let counter t name =
  match find_or_register t name (fun () -> M_counter { c = 0 }) with
  | M_counter c -> c
  | M_gauge _ | M_hist _ ->
      invalid_arg (Printf.sprintf "Metrics.counter: %S is not a counter" name)

let incr c = c.c <- c.c + 1

let add c n = c.c <- c.c + n

let counter_value c = c.c

let gauge t name =
  match find_or_register t name (fun () -> M_gauge { g = 0.0 }) with
  | M_gauge g -> g
  | M_counter _ | M_hist _ ->
      invalid_arg (Printf.sprintf "Metrics.gauge: %S is not a gauge" name)

let set g v = g.g <- v

let set_max g v = if v > g.g then g.g <- v

let gauge_value g = g.g

let histogram t ?buckets ?width name =
  match
    find_or_register t name (fun () -> M_hist (Hist.create ?buckets ?width ()))
  with
  | M_hist h ->
      (* Explicitly requested shape parameters must match what the
         name was registered with — silently handing back a handle of
         a different shape would misbucket every later observation. *)
      let check what req got =
        match req with
        | Some r when r <> got ->
            invalid_arg
              (Printf.sprintf
                 "Metrics.histogram: %S already registered with %s %d, \
                  requested %d"
                 name what got r)
        | _ -> ()
      in
      check "buckets" buckets (Hist.bucket_count h);
      check "width" width (Hist.bucket_width h);
      h
  | M_counter _ | M_gauge _ ->
      invalid_arg (Printf.sprintf "Metrics.histogram: %S is not a histogram" name)

let to_json t =
  let section pick to_j =
    Hashtbl.fold
      (fun name m acc -> match pick m with Some v -> (name, to_j v) :: acc | None -> acc)
      t.tbl []
    |> List.sort compare
  in
  let counters =
    section (function M_counter c -> Some c | _ -> None) (fun c -> Json.Int c.c)
  in
  let gauges =
    section (function M_gauge g -> Some g | _ -> None) (fun g -> Json.Float g.g)
  in
  let hists = section (function M_hist h -> Some h | _ -> None) Hist.to_json in
  let sec name fields = if fields = [] then (name, Json.Null) else (name, Json.Obj fields) in
  Json.obj [ sec "counters" counters; sec "gauges" gauges; sec "histograms" hists ]
