(** Fixed-bucket integer histograms for hot-path instrumentation.

    Buckets are linear: bucket [i] covers values in
    [[i*width, (i+1)*width)], with one final overflow bucket for
    everything at or beyond [buckets*width]. An observation is one
    division and one array increment, cheap enough to run on the
    simulator's commit path. Exact [min], [max], [sum] and [count] are
    tracked alongside the buckets, so the quantities the TBTSO Δ
    invariant cares about (notably the maximum store-buffer residency)
    are never subject to bucketing error. *)

type t

val create : ?buckets:int -> ?width:int -> unit -> t
(** [buckets] regular buckets (default 64) of [width] (default 1) plus
    an overflow bucket. @raise Invalid_argument unless both positive. *)

val observe : t -> int -> unit
(** Record one value. Negative values clamp to 0. *)

val count : t -> int

val sum : t -> int

val min_value : t -> int
(** Smallest observed value; 0 when empty. *)

val max_value : t -> int
(** Largest observed value (exact, even in the overflow bucket); 0 when
    empty. *)

val mean : t -> float
(** 0.0 when empty. *)

val percentile : t -> float -> int
(** [percentile t q] for [q] in [0,1]: the nearest-rank q-quantile up to
    bucketing, reported as the inclusive upper edge of the bucket
    holding it, clamped into [[min_value, max_value]] (so a low
    quantile's bucket edge never overshoots the observed minimum; the
    overflow bucket reports the exact maximum). Always within one
    bucket width of the exact nearest-rank quantile. 0 when empty.
    @raise Invalid_argument if [q] outside [0,1]. *)

val buckets : t -> int array
(** Copy of the counts, overflow bucket last. *)

val bucket_count : t -> int
(** Number of regular buckets (the [buckets] argument of {!create}),
    excluding the overflow bucket. *)

val bucket_width : t -> int

val merge : t -> t -> t
(** Pointwise sum. @raise Invalid_argument on shape mismatch. *)

val copy : t -> t

val clear : t -> unit

val to_json : t -> Json.t
(** [{width; count; sum; min; max; mean; p50; p90; p99; buckets}] with
    [buckets] trimmed of trailing zero buckets. *)
