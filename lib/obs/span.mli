(** Monotonic-clock span profiler with per-domain buffers.

    Two complementary instruments share one profiler value:

    - {b Timeline spans} ({!with_span}, {!count}): nested, labelled
      intervals buffered per domain and exported as Chrome
      [trace_event] records ({!to_chrome}), so a whole
      [tbtso-litmus check --profile] run loads in Perfetto. Per-span
      counters attach to the innermost open span of the calling domain.
    - {b Phase accumulators} ({!phase}, {!start}, {!stop}, {!items}):
      pre-looked-up handles (the {!Metrics} idiom) aggregating total
      wall time, call count and item count per phase label. These are
      what the hot loops use — an explorer expanding half a million
      states per second cannot afford one buffered record per state,
      but two clock reads per phase section are fine.

    Buffers and phase tables are per-domain, created on first use
    through [Domain.DLS] and registered with the profiler, so worker
    domains of [lib/par]'s pool record without locks and the profiler
    merges everything at read time ({!spans}, {!phase_totals}) — the
    buffers outlive the domains that filled them.

    A {!disabled} profiler reduces every operation to one load and one
    branch; instrumented code paths take [?profiler] defaulting to
    {!disabled} so uninstrumented callers pay near-zero overhead.

    Thread-safety: each domain writes only its own buffer. Reading
    ({!spans}, {!phase_totals}, {!to_chrome}) is meant for after the
    instrumented work has quiesced; concurrent readers see a consistent
    registry but possibly in-flight spans. Phase handles are
    domain-local — acquire them on the domain that uses them. *)

type t
(** A profiler. *)

val disabled : t
(** The shared no-op profiler: every operation is one branch. *)

val create : unit -> t
(** A fresh recording profiler. *)

val enabled : t -> bool

val now_ns : unit -> int
(** [CLOCK_MONOTONIC] in nanoseconds (C stub; the only monotonic clock
    in the tree). Meaningful only as differences. *)

(** {1 Timeline spans} *)

val with_span : t -> string -> (unit -> 'a) -> 'a
(** [with_span t name f] runs [f ()] inside a span labelled [name] on
    the calling domain. Spans nest; the record survives exceptions
    (closed on the way out). Disabled: tail-calls [f]. *)

val count : t -> string -> int -> unit
(** Add [n] to the named counter of the calling domain's innermost
    open span; silently dropped when no span is open (or disabled). *)

type span = {
  sp_name : string;
  sp_domain : int;  (** [Domain.id] of the recording domain. *)
  sp_start_ns : int;  (** {!now_ns} at entry. *)
  sp_dur_ns : int;  (** -1 for a span still open at read time. *)
  sp_depth : int;  (** Nesting depth on its domain, outermost = 0. *)
  sp_counters : (string * int) list;  (** Sorted by name. *)
}

val spans : t -> span list
(** All spans from every domain, completed ones first ordered by start
    time, then still-open ones. Empty for a disabled profiler. *)

(** {1 Phase accumulators} *)

type phase
(** A handle to one phase label's accumulator on one domain. *)

val phase : t -> string -> phase
(** Find-or-create the calling domain's accumulator for [name]. Look
    handles up once per loop, not per iteration. *)

val start : phase -> unit
(** Open a timed section. Sections of one handle must not nest. *)

val stop : phase -> unit
(** Close the section opened by the matching {!start}, adding its
    duration to the phase total and bumping the call count. *)

val items : phase -> int -> unit
(** Add [n] to the phase's item count (states expanded, clauses
    simplified, ...), from which per-second rates are derived. *)

type phase_total = {
  pt_name : string;
  pt_ns : int;  (** Total wall time across calls and domains. *)
  pt_calls : int;
  pt_items : int;
}

val phase_totals : t -> phase_total list
(** Per-label totals merged across domains, sorted by descending
    [pt_ns]. Empty for a disabled profiler. *)

(** {1 Output} *)

val reset : t -> unit
(** Drop all recorded spans and phase totals (buffers stay
    registered). Open spans and open phase sections are dropped too —
    only call between instrumented regions. *)

val phases_json : t -> Json.t
(** [{label: {ns, calls, items, per_sec?}, ...}] — [per_sec] =
    items/second, present when items and time are both nonzero. *)

val pp_phase_table : Format.formatter -> t -> unit
(** Aligned per-phase table: label, total ms, calls, items, items/s. *)

val to_chrome : t -> pid:int -> Chrome.writer -> unit
(** Export every span as a complete (["X"]) event — one record with
    [dur] — on a per-domain track ([tid] = domain id, named via
    thread-name metadata), timestamps rebased to the earliest span.
    Spans still open at export time are emitted as ["B"]
    duration-begin events so Perfetto shows them as unterminated. *)
