type t = {
  width : int;
  counts : int array;  (* length buckets + 1; last is overflow *)
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let create ?(buckets = 64) ?(width = 1) () =
  if buckets <= 0 then invalid_arg "Hist.create: buckets must be positive";
  if width <= 0 then invalid_arg "Hist.create: width must be positive";
  {
    width;
    counts = Array.make (buckets + 1) 0;
    count = 0;
    sum = 0;
    min_v = max_int;
    max_v = min_int;
  }

let observe t v =
  let v = if v < 0 then 0 else v in
  let i = v / t.width in
  let last = Array.length t.counts - 1 in
  let i = if i > last then last else i in
  t.counts.(i) <- t.counts.(i) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.count

let sum t = t.sum

let min_value t = if t.count = 0 then 0 else t.min_v

let max_value t = if t.count = 0 then 0 else t.max_v

let mean t = if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

let percentile t q =
  if not (q >= 0.0 && q <= 1.0) then invalid_arg "Hist.percentile: q outside [0,1]";
  if t.count = 0 then 0
  else begin
    (* Rank of the q-quantile, 1-based, "nearest rank" convention. *)
    let rank = int_of_float (ceil (q *. float_of_int t.count)) in
    let rank = if rank < 1 then 1 else rank in
    let last = Array.length t.counts - 1 in
    let rec go i acc =
      if i > last then t.max_v
      else
        let acc = acc + t.counts.(i) in
        if acc >= rank then
          if i = last then t.max_v
          else
            (* The bucket only bounds the quantile to [i*width,
               (i+1)*width); report its upper edge clamped into
               [min_v, max_v] so no quantile exceeds the observed
               extremes (a low quantile's bucket edge can otherwise
               overshoot even the minimum). *)
            let upper = ((i + 1) * t.width) - 1 in
            let upper = if upper > t.max_v then t.max_v else upper in
            if upper < t.min_v then t.min_v else upper
        else go (i + 1) acc
    in
    go 0 0
  end

let buckets t = Array.copy t.counts

let bucket_count t = Array.length t.counts - 1

let bucket_width t = t.width

let merge a b =
  if a.width <> b.width || Array.length a.counts <> Array.length b.counts then
    invalid_arg "Hist.merge: shape mismatch";
  let m =
    {
      width = a.width;
      counts = Array.mapi (fun i c -> c + b.counts.(i)) a.counts;
      count = a.count + b.count;
      sum = a.sum + b.sum;
      min_v = min a.min_v b.min_v;
      max_v = max a.max_v b.max_v;
    }
  in
  m

let copy t = { t with counts = Array.copy t.counts }

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.count <- 0;
  t.sum <- 0;
  t.min_v <- max_int;
  t.max_v <- min_int

let to_json t =
  let last_nonzero = ref (-1) in
  Array.iteri (fun i c -> if c > 0 then last_nonzero := i) t.counts;
  let trimmed = Array.to_list (Array.sub t.counts 0 (!last_nonzero + 1)) in
  Json.obj
    [
      ("width", Json.Int t.width);
      ("count", Json.Int t.count);
      ("sum", Json.Int t.sum);
      ("min", Json.Int (min_value t));
      ("max", Json.Int (max_value t));
      ("mean", Json.Float (mean t));
      ("p50", Json.Int (percentile t 0.50));
      ("p90", Json.Int (percentile t 0.90));
      ("p99", Json.Int (percentile t 0.99));
      ("buckets", Json.List (List.map (fun c -> Json.Int c) trimmed));
    ]
