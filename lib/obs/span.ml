external now_ns : unit -> int = "tbtso_obs_monotonic_ns" [@@noalloc]

type srec = {
  name : string;
  domain : int;
  t0 : int;
  mutable t1 : int;  (* -1 while open *)
  depth : int;
  mutable counters : (string * int) list;
}

type acc = {
  a_name : string;
  mutable a_ns : int;
  mutable a_calls : int;
  mutable a_items : int;
  mutable a_open : int;  (* start timestamp of the open section *)
}

(* One per (profiler, domain): written only by its domain, read by the
   merger after the work quiesces. Completed spans accumulate in
   [recs] (reverse order); [stack] holds the open spans, innermost
   first. *)
type buf = {
  b_domain : int;
  mutable recs : srec list;
  mutable stack : srec list;
  phases : (string, acc) Hashtbl.t;
}

type t = {
  on : bool;
  mu : Mutex.t;
  mutable bufs : buf list;
  key : buf Domain.DLS.key;
}

let make on =
  let mu = Mutex.create () in
  let rec t =
    lazy
      {
        on;
        mu;
        bufs = [];
        key =
          Domain.DLS.new_key (fun () ->
              let b =
                {
                  b_domain = (Domain.self () :> int);
                  recs = [];
                  stack = [];
                  phases = Hashtbl.create 8;
                }
              in
              let t = Lazy.force t in
              Mutex.lock t.mu;
              t.bufs <- b :: t.bufs;
              Mutex.unlock t.mu;
              b);
      }
  in
  Lazy.force t

let create () = make true

let disabled = make false

let enabled t = t.on

let buffer t = Domain.DLS.get t.key

(* Timeline spans ----------------------------------------------------- *)

let with_span t name f =
  if not t.on then f ()
  else begin
    let b = buffer t in
    let r =
      {
        name;
        domain = b.b_domain;
        t0 = now_ns ();
        t1 = -1;
        depth = List.length b.stack;
        counters = [];
      }
    in
    b.stack <- r :: b.stack;
    let finish () =
      r.t1 <- now_ns ();
      (match b.stack with
      | top :: rest when top == r -> b.stack <- rest
      | stack ->
          (* Unbalanced exit (an exception unwound past inner spans):
             close everything down to and including [r]. *)
          let rec pop = function
            | top :: rest ->
                if top != r then begin
                  top.t1 <- r.t1;
                  top.counters <- List.sort compare top.counters;
                  b.recs <- top :: b.recs;
                  pop rest
                end
                else rest
            | [] -> []
          in
          b.stack <- pop stack);
      r.counters <- List.sort compare r.counters;
      b.recs <- r :: b.recs
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        finish ();
        Printexc.raise_with_backtrace e bt
  end

let count t name n =
  if t.on then
    let b = buffer t in
    match b.stack with
    | [] -> ()
    | r :: _ -> (
        match List.assoc_opt name r.counters with
        | Some v ->
            r.counters <-
              (name, v + n) :: List.remove_assoc name r.counters
        | None -> r.counters <- (name, n) :: r.counters)

type span = {
  sp_name : string;
  sp_domain : int;
  sp_start_ns : int;
  sp_dur_ns : int;
  sp_depth : int;
  sp_counters : (string * int) list;
}

let snapshot t =
  Mutex.lock t.mu;
  let bufs = t.bufs in
  Mutex.unlock t.mu;
  bufs

let spans t =
  let closed = ref [] and open_ = ref [] in
  List.iter
    (fun b ->
      List.iter
        (fun r ->
          let s =
            {
              sp_name = r.name;
              sp_domain = r.domain;
              sp_start_ns = r.t0;
              sp_dur_ns = (if r.t1 < 0 then -1 else r.t1 - r.t0);
              sp_depth = r.depth;
              sp_counters = r.counters;
            }
          in
          if s.sp_dur_ns < 0 then open_ := s :: !open_
          else closed := s :: !closed)
        (b.recs @ b.stack))
    (snapshot t);
  List.stable_sort
    (fun a b -> compare a.sp_start_ns b.sp_start_ns)
    !closed
  @ List.stable_sort (fun a b -> compare a.sp_start_ns b.sp_start_ns) !open_

(* Phase accumulators ------------------------------------------------- *)

type phase = { p_on : bool; p_acc : acc }

let dummy_acc = { a_name = ""; a_ns = 0; a_calls = 0; a_items = 0; a_open = 0 }

let phase t name =
  if not t.on then { p_on = false; p_acc = dummy_acc }
  else
    let b = buffer t in
    let acc =
      match Hashtbl.find_opt b.phases name with
      | Some a -> a
      | None ->
          let a =
            { a_name = name; a_ns = 0; a_calls = 0; a_items = 0; a_open = 0 }
          in
          Hashtbl.add b.phases name a;
          a
    in
    { p_on = true; p_acc = acc }

let start p = if p.p_on then p.p_acc.a_open <- now_ns ()

let stop p =
  if p.p_on then begin
    let a = p.p_acc in
    a.a_ns <- a.a_ns + (now_ns () - a.a_open);
    a.a_calls <- a.a_calls + 1
  end

let items p n = if p.p_on then p.p_acc.a_items <- p.p_acc.a_items + n

type phase_total = {
  pt_name : string;
  pt_ns : int;
  pt_calls : int;
  pt_items : int;
}

let phase_totals t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun b ->
      Hashtbl.iter
        (fun name a ->
          let cur =
            match Hashtbl.find_opt tbl name with
            | Some c -> c
            | None ->
                let c =
                  { pt_name = name; pt_ns = 0; pt_calls = 0; pt_items = 0 }
                in
                Hashtbl.add tbl name c;
                c
          in
          Hashtbl.replace tbl name
            {
              cur with
              pt_ns = cur.pt_ns + a.a_ns;
              pt_calls = cur.pt_calls + a.a_calls;
              pt_items = cur.pt_items + a.a_items;
            })
        b.phases)
    (snapshot t);
  Hashtbl.fold (fun _ c acc -> c :: acc) tbl []
  |> List.sort (fun a b -> compare (b.pt_ns, b.pt_name) (a.pt_ns, a.pt_name))

let reset t =
  List.iter
    (fun b ->
      b.recs <- [];
      b.stack <- [];
      Hashtbl.reset b.phases)
    (snapshot t)

(* Output ------------------------------------------------------------- *)

let per_sec pt =
  if pt.pt_items > 0 && pt.pt_ns > 0 then
    Some (float_of_int pt.pt_items /. (float_of_int pt.pt_ns *. 1e-9))
  else None

let phases_json t =
  Json.obj
    (List.map
       (fun pt ->
         ( pt.pt_name,
           Json.obj
             [
               ("ns", Json.Int pt.pt_ns);
               ("calls", Json.Int pt.pt_calls);
               ("items", Json.Int pt.pt_items);
               ( "per_sec",
                 match per_sec pt with
                 | Some r -> Json.Float r
                 | None -> Json.Null );
             ] ))
       (phase_totals t))

let pp_phase_table ppf t =
  let totals = phase_totals t in
  if totals <> [] then begin
    Format.fprintf ppf "%-24s %12s %10s %12s %12s@." "phase" "total ms"
      "calls" "items" "items/s";
    List.iter
      (fun pt ->
        Format.fprintf ppf "%-24s %12.3f %10d %12d %12s@." pt.pt_name
          (float_of_int pt.pt_ns *. 1e-6)
          pt.pt_calls pt.pt_items
          (match per_sec pt with
          | Some r -> Printf.sprintf "%.0f" r
          | None -> "-"))
      totals
  end

let to_chrome t ~pid w =
  let all = spans t in
  match all with
  | [] -> ()
  | first :: _ ->
      let t_base =
        List.fold_left (fun m s -> min m s.sp_start_ns) first.sp_start_ns all
      in
      let us ns = float_of_int (ns - t_base) /. 1e3 in
      let tids = Hashtbl.create 4 in
      List.iter
        (fun s ->
          if not (Hashtbl.mem tids s.sp_domain) then begin
            Hashtbl.add tids s.sp_domain ();
            Chrome.emit w
              (Chrome.thread_name ~pid ~tid:s.sp_domain
                 (Printf.sprintf "domain %d" s.sp_domain))
          end;
          let args =
            List.map (fun (k, v) -> (k, Json.Int v)) s.sp_counters
          in
          if s.sp_dur_ns < 0 then
            Chrome.emit w
              (Chrome.duration_begin ~name:s.sp_name ~cat:"span" ~pid
                 ~tid:s.sp_domain ~ts:(us s.sp_start_ns) ~args ())
          else
            Chrome.emit w
              (Chrome.complete ~name:s.sp_name ~cat:"span" ~pid
                 ~tid:s.sp_domain ~ts:(us s.sp_start_ns)
                 ~dur:(float_of_int s.sp_dur_ns /. 1e3)
                 ~args ()))
        all
