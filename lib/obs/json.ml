type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let obj fields = Obj (List.filter (fun (_, v) -> v <> Null) fields)

let add_escaped b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_float b f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.1f" f)
  else
    (* Shortest representation that round-trips a double. *)
    Buffer.add_string b (Printf.sprintf "%.17g" f)

let rec add b = function
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (if x then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      (* JSON has no NaN/Infinity literals. *)
      if not (Float.is_finite f) then Buffer.add_string b "null"
      else add_float b f
  | String s -> add_escaped b s
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          add b x)
        xs;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          add_escaped b k;
          Buffer.add_char b ':';
          add b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  add b v;
  Buffer.contents b

let to_channel oc v = output_string oc (to_string v)

let write_line oc v =
  to_channel oc v;
  output_char oc '\n'

let write_file path v =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_line oc v)

exception Parse_error of { pos : int; message : string }

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail message = raise (Parse_error { pos = !pos; message }) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'
               | '\\' -> Buffer.add_char b '\\'
               | '/' -> Buffer.add_char b '/'
               | 'n' -> Buffer.add_char b '\n'
               | 'r' -> Buffer.add_char b '\r'
               | 't' -> Buffer.add_char b '\t'
               | 'b' -> Buffer.add_char b '\b'
               | 'f' -> Buffer.add_char b '\012'
               | 'u' ->
                   (* [!pos] is on the 'u'; consume it and exactly four
                      hex digits, leaving [!pos] on the last digit. *)
                   let read_hex4 () =
                     if !pos + 4 >= n then fail "truncated \\u escape";
                     let hex = String.sub s (!pos + 1) 4 in
                     let code =
                       match int_of_string_opt ("0x" ^ hex) with
                       | Some c -> c
                       | None -> fail "bad \\u escape"
                     in
                     pos := !pos + 4;
                     code
                   in
                   let add_utf8 code =
                     if code < 0x80 then Buffer.add_char b (Char.chr code)
                     else if code < 0x800 then begin
                       Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
                       Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
                     end
                     else if code < 0x10000 then begin
                       Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
                       Buffer.add_char b
                         (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                       Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
                     end
                     else begin
                       Buffer.add_char b (Char.chr (0xf0 lor (code lsr 18)));
                       Buffer.add_char b
                         (Char.chr (0x80 lor ((code lsr 12) land 0x3f)));
                       Buffer.add_char b
                         (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                       Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
                     end
                   in
                   let code = read_hex4 () in
                   (* Surrogate halves are not code points: a high half
                      must pair with an immediately following low half
                      (one supplementary-plane character), anything else
                      is malformed JSON text. *)
                   if code >= 0xd800 && code <= 0xdbff then
                     if !pos + 2 < n && s.[!pos + 1] = '\\' && s.[!pos + 2] = 'u'
                     then begin
                       pos := !pos + 2;
                       let lo = read_hex4 () in
                       if lo < 0xdc00 || lo > 0xdfff then
                         fail "high surrogate not followed by low surrogate"
                       else
                         add_utf8
                           (0x10000
                           + ((code - 0xd800) lsl 10)
                           + (lo - 0xdc00))
                     end
                     else fail "lone high surrogate in \\u escape"
                   else if code >= 0xdc00 && code <= 0xdfff then
                     fail "lone low surrogate in \\u escape"
                   else add_utf8 code
               | c -> fail (Printf.sprintf "bad escape %C" c));
            advance ();
            go ()
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    let floatish = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text in
    if floatish then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields_loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items_loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          items_loop ();
          List (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing input after value";
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
