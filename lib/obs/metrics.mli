(** A small metrics registry: named counters, gauges and histograms.

    Handles are plain mutable records, so a hot loop looks up its
    counter once and then pays one increment per observation — no
    hashing on the hot path. Registering the same name twice returns
    the same handle (convenient for per-file/per-mode loops that want
    aggregate totals). A registry snapshots to JSON for the
    machine-readable outputs of [tbtso-litmus check --json] and the
    bench harness. *)

type t

val create : unit -> t

type counter

val counter : t -> string -> counter
(** Find-or-register. @raise Invalid_argument if the name is already
    registered as a different metric kind. *)

val incr : counter -> unit

val add : counter -> int -> unit

val counter_value : counter -> int

type gauge

val gauge : t -> string -> gauge

val set : gauge -> float -> unit

val set_max : gauge -> float -> unit
(** Keep the maximum of the current and given value (high-watermark
    gauges such as peak frontier depth). *)

val gauge_value : gauge -> float

val histogram : t -> ?buckets:int -> ?width:int -> string -> Hist.t
(** Find-or-register; [buckets]/[width] as {!Hist.create}.
    @raise Invalid_argument if the name is already registered as a
    different metric kind, or as a histogram whose shape differs from
    an explicitly passed [buckets]/[width] (omitted parameters match
    any existing shape). *)

val to_json : t -> Json.t
(** [{counters: {...}, gauges: {...}, histograms: {...}}], each sorted
    by name; empty sections are dropped. *)
