type writer = { oc : out_channel; mutable first : bool; mutable closed : bool }

let to_channel oc =
  output_string oc "{\"traceEvents\":[";
  { oc; first = true; closed = false }

let emit w ev =
  if w.closed then invalid_arg "Chrome.emit: writer already closed";
  if w.first then w.first <- false else output_char w.oc ',';
  output_char w.oc '\n';
  Json.to_channel w.oc ev

let close w =
  if not w.closed then begin
    w.closed <- true;
    output_string w.oc "\n]}\n"
  end

let base ~ph ~name ?cat ~pid ~tid ~ts extra =
  Json.obj
    ([
       ("name", Json.String name);
       ("ph", Json.String ph);
       ("cat", match cat with Some c -> Json.String c | None -> Json.Null);
       ("pid", Json.Int pid);
       ("tid", Json.Int tid);
       ("ts", Json.Float ts);
     ]
    @ extra)

let metadata ~name ~pid ~tid value =
  Json.obj
    [
      ("name", Json.String name);
      ("ph", Json.String "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.String value) ]);
    ]

let thread_name ~pid ~tid name = metadata ~name:"thread_name" ~pid ~tid name

let process_name ~pid name = metadata ~name:"process_name" ~pid ~tid:0 name

let args_field = function
  | [] -> []
  | args -> [ ("args", Json.Obj args) ]

let instant ~name ?cat ~pid ~tid ~ts ?(args = []) () =
  base ~ph:"i" ~name ?cat ~pid ~tid ~ts
    (("s", Json.String "t") :: args_field args)

let complete ~name ?cat ~pid ~tid ~ts ~dur ?(args = []) () =
  base ~ph:"X" ~name ?cat ~pid ~tid ~ts
    (("dur", Json.Float dur) :: args_field args)

(* Paired duration events, for intervals whose end is not known when
   the record is written (e.g. spans still open at export time).
   Closed intervals should use [complete] instead: one "X" record with
   [dur] instead of a "B"/"E" pair, half the trace size. *)
let duration_begin ~name ?cat ~pid ~tid ~ts ?(args = []) () =
  base ~ph:"B" ~name ?cat ~pid ~tid ~ts (args_field args)

let duration_end ~name ?cat ~pid ~tid ~ts () =
  base ~ph:"E" ~name ?cat ~pid ~tid ~ts []

let counter ~name ~pid ~ts series =
  base ~ph:"C" ~name ~pid ~tid:0 ~ts
    (args_field (List.map (fun (k, v) -> (k, Json.Float v)) series))
