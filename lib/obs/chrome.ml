type writer = { oc : out_channel; mutable first : bool; mutable closed : bool }

let to_channel oc =
  output_string oc "{\"traceEvents\":[";
  { oc; first = true; closed = false }

let emit w ev =
  if w.closed then invalid_arg "Chrome.emit: writer already closed";
  if w.first then w.first <- false else output_char w.oc ',';
  output_char w.oc '\n';
  Json.to_channel w.oc ev

let close w =
  if not w.closed then begin
    w.closed <- true;
    output_string w.oc "\n]}\n"
  end

let base ~ph ~name ?cat ~pid ~tid ~ts extra =
  Json.obj
    ([
       ("name", Json.String name);
       ("ph", Json.String ph);
       ("cat", match cat with Some c -> Json.String c | None -> Json.Null);
       ("pid", Json.Int pid);
       ("tid", Json.Int tid);
       ("ts", Json.Float ts);
     ]
    @ extra)

let metadata ~name ~pid ~tid value =
  Json.obj
    [
      ("name", Json.String name);
      ("ph", Json.String "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.String value) ]);
    ]

let thread_name ~pid ~tid name = metadata ~name:"thread_name" ~pid ~tid name

let process_name ~pid name = metadata ~name:"process_name" ~pid ~tid:0 name

let args_field = function
  | [] -> []
  | args -> [ ("args", Json.Obj args) ]

let instant ~name ?cat ~pid ~tid ~ts ?(args = []) () =
  base ~ph:"i" ~name ?cat ~pid ~tid ~ts
    (("s", Json.String "t") :: args_field args)

let complete ~name ?cat ~pid ~tid ~ts ~dur ?(args = []) () =
  base ~ph:"X" ~name ?cat ~pid ~tid ~ts
    (("dur", Json.Float dur) :: args_field args)

let counter ~name ~pid ~ts series =
  base ~ph:"C" ~name ~pid ~tid:0 ~ts
    (args_field (List.map (fun (k, v) -> (k, Json.Float v)) series))
