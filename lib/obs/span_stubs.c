/* Monotonic clock for the span profiler.

   OCaml 5.1's Unix library exposes no monotonic clock, and the span
   layer must not pull bechamel (a with-test dependency) into the
   library graph, so this is the one C stub in the tree: CLOCK_MONOTONIC
   nanoseconds as a tagged OCaml int. 63 bits of nanoseconds is ~292
   years, so the tag bit costs nothing. [@@noalloc] on the OCaml side
   keeps the call a plain C call with no GC interaction. */

#include <caml/mlvalues.h>
#include <time.h>

value tbtso_obs_monotonic_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
