open Tsim
module Json = Tbtso_obs.Json

type per_thread = {
  tid : int;
  stats : Machine.thread_stats;
  residency : Tbtso_obs.Hist.t;
  by_kind : (Machine.drain_kind * Tbtso_obs.Hist.t) list;
}

type run = {
  label : string;
  config : Config.t;
  run_ticks : int;
  threads : per_thread list;
  max_residency : int;
  delta_bound : int option;
}

let bound_ok r =
  match r.delta_bound with None -> true | Some d -> r.max_residency <= d

let consistency_label (c : Config.consistency) =
  match c with
  | Config.Sc -> "sc"
  | Config.Tso -> "tso"
  | Config.Tbtso _ -> "tbtso"
  | Config.Tso_spatial _ -> "tsos"
  | Config.Tbtso_hw _ -> "tbtso_hw"

let delta_bound_of (c : Config.consistency) =
  match c with
  | Config.Tbtso delta -> Some delta
  | Config.Tbtso_hw { tau; quiesce } -> Some (tau + quiesce)
  | Config.Sc | Config.Tso | Config.Tso_spatial _ -> None

let run ?label ?trace ?(nthreads = 4) ?(work_gap = 20) ~config ~run_ticks () =
  let label =
    match label with Some l -> l | None -> consistency_label config.Config.consistency
  in
  let machine = Machine.create config in
  (match trace with Some tr -> Trace.attach ~commits:true tr machine | None -> ());
  let g = Machine.alloc_global machine (nthreads * 8) in
  for i = 0 to nthreads - 1 do
    ignore
      (Machine.spawn machine (fun () ->
           let v = ref 0 in
           while not (Sim.stopping ()) do
             incr v;
             Sim.store (g + (i * 8)) !v;
             ignore (Sim.load (g + ((i + 1) mod nthreads * 8)));
             Sim.work work_gap
           done))
  done;
  ignore (Machine.run ~stop_when:(fun m -> Machine.now m >= run_ticks) machine);
  Machine.request_stop machine;
  (* Wind-down budget: every thread is within one loop iteration of
     observing the stop flag. *)
  ignore (Machine.run ~max_ticks:(run_ticks + (16 * (work_gap + 64))) machine);
  Machine.kill_remaining machine;
  Machine.drain_all machine;
  let threads =
    List.init nthreads (fun tid ->
        let by_kind =
          List.filter_map
            (fun kind ->
              let h = Machine.residency_by_kind machine tid kind in
              if Tbtso_obs.Hist.count h = 0 then None else Some (kind, h))
            Machine.drain_kinds
        in
        {
          tid;
          stats = Machine.stats machine tid;
          residency = Machine.residency machine tid;
          by_kind;
        })
  in
  let max_residency =
    List.fold_left (fun acc t -> max acc t.stats.Machine.max_residency) 0 threads
  in
  {
    label;
    config;
    run_ticks;
    threads;
    max_residency;
    delta_bound = delta_bound_of config.Config.consistency;
  }

let per_thread_json t =
  Json.obj
    [
      ("tid", Json.Int t.tid);
      ("max_residency", Json.Int t.stats.Machine.max_residency);
      ("stores", Json.Int t.stats.Machine.stores);
      ("drains", Json.Int t.stats.Machine.drains);
      ("forced_drains", Json.Int t.stats.Machine.forced_drains);
      ("exit_drains", Json.Int t.stats.Machine.exit_drains);
      ("residency", Tbtso_obs.Hist.to_json t.residency);
      ( "by_kind",
        Json.Obj
          (List.map
             (fun (kind, h) ->
               (Machine.drain_kind_name kind, Tbtso_obs.Hist.to_json h))
             t.by_kind) );
    ]

let run_json r =
  Json.obj
    [
      ("label", Json.String r.label);
      ("consistency", Json.String (consistency_label r.config.Config.consistency));
      ( "delta",
        match r.delta_bound with Some d -> Json.Int d | None -> Json.Null );
      ("run_ticks", Json.Int r.run_ticks);
      ("nthreads", Json.Int (List.length r.threads));
      ("max_residency", Json.Int r.max_residency);
      ("bound_ok", Json.Bool (bound_ok r));
      ("threads", Json.List (List.map per_thread_json r.threads));
    ]
