(** Store-buffer residency measurement: the paper's central quantity
    (how long a store actually sits buffered before reaching memory) as
    a distribution, per thread and per drain kind.

    Runs a fixed write/read/compute loop on the {!Tsim.Machine} under a
    caller-chosen {!Tsim.Config} and returns every thread's residency
    histogram. Under [Config.Tbtso delta] the run's maximum residency is
    guaranteed [<= delta] even against [Drain_adversarial] (the machine
    force-commits at the deadline); under plain [Tso] with adversarial
    drains residency is unbounded — stores survive to the exit drain, so
    the maximum grows with the run length. [tbtso-bench residency]
    prints these side by side and [--json] emits them in the bench
    schema. *)

type per_thread = {
  tid : int;
  stats : Tsim.Machine.thread_stats;
  residency : Tbtso_obs.Hist.t;  (** All drain kinds merged. *)
  by_kind : (Tsim.Machine.drain_kind * Tbtso_obs.Hist.t) list;
      (** Only kinds with at least one commit. *)
}

type run = {
  label : string;
  config : Tsim.Config.t;
  run_ticks : int;
  threads : per_thread list;
  max_residency : int;  (** Maximum over threads (exact). *)
  delta_bound : int option;
      (** The Δ (or τ + quiescence) ceiling the model promises, when it
          promises one. *)
}

val bound_ok : run -> bool
(** [max_residency <= delta_bound] when the model has a ceiling; [true]
    (vacuously) otherwise. *)

val run :
  ?label:string ->
  ?trace:Tsim.Trace.t ->
  ?nthreads:int ->
  ?work_gap:int ->
  config:Tsim.Config.t ->
  run_ticks:int ->
  unit ->
  run
(** Each of the [nthreads] (default 4) threads loops
    store-own-slot / load-neighbour / [work_gap] (default 20) local work
    until [run_ticks], then winds down; remaining buffered stores commit
    through the exit drain and are counted in the distributions. When
    [trace] is given it is attached with [~commits:true] before the run,
    so {!Tsim.Trace_export} can draw the buffered-store lifetimes. *)

val run_json : run -> Tbtso_obs.Json.t
(** The bench-schema record: [{label; consistency; delta?; run_ticks;
    nthreads; max_residency; bound_ok; threads: [{tid; max_residency;
    stores; drains; forced_drains; exit_drains; residency;
    by_kind}]}]. *)
